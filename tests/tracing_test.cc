/**
 * @file
 * Observability tests: tracer span nesting across threads,
 * flight-recorder wraparound, Chrome trace-event export validated
 * through support::Json, correlation-id propagation from the dispatch
 * service through the runtime to device submits, trace/counter
 * reconciliation, the deterministic storm lifecycle (queue span,
 * profiling passes, guard strike, retry, winner execution -- one
 * correlation id), the failing job's flight-recorder Status payload,
 * the structured LaunchReport selection timeline, the learned-
 * selection instants (predict.hit / predict.miss / predict.demoted
 * correlated to their job ids and reconciled 1:1 against the
 * predict.* counters), and the Prometheus / text metric exports.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dysel/predict/predictor.hh"
#include "dysel/runtime.hh"
#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/tracing/flight_recorder.hh"
#include "support/tracing/tracer.hh"

using namespace dysel;
using namespace dysel::serve;
using sim::FaultInjector;
using sim::VariantFaultKind;
using support::Json;
using support::MetricsRegistry;
using support::tracing::FlightRecorder;
using support::tracing::TraceEvent;
using support::tracing::Tracer;

namespace {

constexpr std::uint32_t laneCount = 8;

/** Float marker kernel (guard-checkable): out[unit] = marker. */
kdp::KernelVariant
floatKernel(const char *name, float marker, std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [marker, flops_per_unit](kdp::GroupCtx &g,
                                    const kdp::KernelArgs &args) {
        auto &out = args.buf<float>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
floatInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

/** Three-variant pool; the bad one profiles fastest. */
void
registerPool(runtime::Runtime &rt, const std::string &sig, float marker)
{
    rt.removeKernel(sig);
    rt.addKernel(sig, floatKernel("v-good-slow", marker, 4000));
    rt.addKernel(sig, floatKernel("v-bad", marker, 100));
    rt.addKernel(sig, floatKernel("v-good", marker, 1000));
    rt.setKernelInfo(sig, floatInfo(sig));
}

/** Guard-on, swap-profiling launch options (fully checkable). */
runtime::LaunchOptions
guardedOpt()
{
    runtime::LaunchOptions opt;
    opt.mode = runtime::ProfilingMode::Swap;
    opt.modeExplicit = true;
    opt.orch = runtime::Orchestration::Sync;
    opt.profileRepeats = 1;
    return opt;
}

/** One launch's float output buffer and args. */
struct Probe
{
    std::uint64_t units;
    kdp::Buffer<float> out;
    kdp::KernelArgs args;

    explicit Probe(std::uint64_t n)
        : units(n), out(n, kdp::MemSpace::Global, "out")
    {
        out.fill(-1.0f);
        args.add(out).add(static_cast<std::int64_t>(n));
    }
};

Job
stormJob(Probe &p, const std::string &sig, float marker)
{
    Job job;
    job.signature = sig;
    job.units = p.units;
    job.args = p.args;
    job.opt = guardedOpt();
    job.ensureRegistered = [&p, sig, marker](runtime::Runtime &rt) {
        registerPool(rt, sig, marker);
    };
    return job;
}

/** Events of @p name carrying correlation @p cid. */
std::vector<TraceEvent>
eventsOf(const std::vector<TraceEvent> &events, const std::string &name,
         std::uint64_t cid)
{
    std::vector<TraceEvent> out;
    for (const auto &ev : events)
        if (ev.name == name && ev.correlation == cid)
            out.push_back(ev);
    return out;
}

} // namespace

// ---- FlightRecorder ----------------------------------------------------

TEST(FlightRecorder, RetainsTheLastCapacityRecordsAcrossWraparound)
{
    FlightRecorder fr(8);
    EXPECT_EQ(fr.capacity(), 8u);
    for (std::uint64_t i = 0; i < 20; ++i)
        fr.record(/*ts=*/i * 10, /*job=*/i, "phase" + std::to_string(i),
                  "d" + std::to_string(i));

    EXPECT_EQ(fr.recorded(), 20u);
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    // Oldest-first: records 12..19 survive.
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].job, 12 + i);
        EXPECT_EQ(snap[i].ts, (12 + i) * 10);
        EXPECT_EQ(snap[i].phase, "phase" + std::to_string(12 + i));
    }

    const std::string dump = fr.dump();
    EXPECT_NE(dump.find("20 recorded, last 8"), std::string::npos);
    EXPECT_NE(dump.find("phase=phase19"), std::string::npos);
    // Overwritten records are gone from the dump.
    EXPECT_EQ(dump.find("phase=phase11"), std::string::npos);
}

TEST(FlightRecorder, ZeroCapacityIsClampedAndEmptyDumpIsWellFormed)
{
    FlightRecorder fr(0);
    EXPECT_EQ(fr.capacity(), 1u);
    EXPECT_EQ(fr.snapshot().size(), 0u);
    EXPECT_NE(fr.dump().find("0 recorded"), std::string::npos);
}

// ---- Tracer ------------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer t;
    const auto tid = t.track("w");
    t.instant(tid, "x", 1);
    t.complete(tid, "y", 1, 2);
    EXPECT_EQ(t.eventCount(), 0u);

    t.setEnabled(true);
    t.instant(tid, "x", 1);
    EXPECT_EQ(t.eventCount(), 1u);
}

TEST(Tracer, NestedSpansFromConcurrentThreadsStayBalancedPerTrack)
{
    Tracer t;
    t.setEnabled(true);
    constexpr unsigned nThreads = 2;
    constexpr unsigned nSpans = 50;

    std::vector<std::thread> threads;
    for (unsigned w = 0; w < nThreads; ++w) {
        threads.emplace_back([&t, w] {
            const auto tid =
                t.track("worker" + std::to_string(w));
            for (unsigned i = 0; i < nSpans; ++i) {
                const std::uint64_t base = i * 100;
                t.begin(tid, "outer", base, /*cid=*/w + 1);
                t.begin(tid, "inner", base + 10, w + 1,
                        {{"i", std::to_string(i)}});
                t.end(tid, "inner", base + 20, w + 1);
                t.end(tid, "outer", base + 30, w + 1);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(t.eventCount(), nThreads * nSpans * 4);
    EXPECT_EQ(t.countNamed("outer"), nThreads * nSpans * 2);

    // Per track, B and E interleave with non-negative depth and end
    // balanced -- the property chrome://tracing needs to nest them.
    std::map<std::uint64_t, int> depth;
    for (const auto &ev : t.snapshot()) {
        if (ev.phase == TraceEvent::Phase::Begin)
            depth[ev.tid]++;
        else if (ev.phase == TraceEvent::Phase::End) {
            depth[ev.tid]--;
            ASSERT_GE(depth[ev.tid], 0);
        }
    }
    ASSERT_EQ(depth.size(), nThreads);
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(Tracer, ChromeExportIsValidJsonWithPhTsTidAndTrackNames)
{
    Tracer t;
    t.setEnabled(true);
    const auto tid = t.track("dev0:test");
    t.complete(tid, "queue", 1000, 3000, /*cid=*/7,
               {{"attempt", "1"}});
    t.instant(tid, "retry", 4000, 7, {{"to", "dev1"}});

    const Json root = Json::parse(t.exportChromeTrace().dump());
    ASSERT_TRUE(root.isObject());
    const Json &events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    // 2 metadata records (thread_name + thread_sort_index) + 2 events.
    ASSERT_EQ(events.items().size(), 4u);

    bool sawName = false, sawQueue = false, sawRetry = false;
    for (const auto &e : events.items()) {
        ASSERT_TRUE(e.isObject());
        const std::string ph = e.at("ph").asString();
        EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i") << ph;
        EXPECT_EQ(e.at("pid").asUint(), 1u);
        EXPECT_EQ(e.at("tid").asUint(), tid);
        if (ph == "M" && e.stringOr("name", "") == "thread_name") {
            EXPECT_EQ(e.at("args").at("name").asString(), "dev0:test");
            sawName = true;
            continue;
        }
        if (ph == "M")
            continue;
        // ts is microseconds: 1000 ns -> 1 us.
        EXPECT_GE(e.at("ts").asNumber(), 1.0);
        EXPECT_EQ(e.at("args").at("cid").asUint(), 7u);
        if (ph == "X") {
            EXPECT_EQ(e.at("dur").asNumber(), 2.0);
            EXPECT_EQ(e.at("args").at("attempt").asString(), "1");
            sawQueue = true;
        }
        if (ph == "i") {
            EXPECT_EQ(e.at("s").asString(), "t");
            sawRetry = true;
        }
    }
    EXPECT_TRUE(sawName);
    EXPECT_TRUE(sawQueue);
    EXPECT_TRUE(sawRetry);
}

// ---- End-to-end correlation --------------------------------------------

TEST(TracingService, CorrelationIdPropagatesServiceToRuntimeToDevice)
{
    store::SelectionStore store;
    DispatchService svc(store);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.tracer().setEnabled(true);
    svc.start();

    Probe p(2048);
    JobHandle h = svc.submit(stormJob(p, "k", 5.0f));
    const JobResult r = h.result();
    ASSERT_TRUE(r.ok()) << r.status.toString();
    svc.stop();

    const std::uint64_t cid = h.id();
    ASSERT_NE(cid, 0u);
    const auto events = svc.tracer().snapshot();

    // Service layer: the queue span.
    const auto queue = eventsOf(events, "queue", cid);
    ASSERT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue[0].phase, TraceEvent::Phase::Complete);

    // Runtime layer: the launch span and the profiling passes.
    ASSERT_EQ(eventsOf(events, "launch", cid).size(), 1u);
    std::set<std::string> passes;
    for (const auto &ev : events)
        if (ev.correlation == cid && ev.name.rfind("profile:", 0) == 0)
            passes.insert(ev.name);
    EXPECT_GE(passes.size(), 2u);

    // Winner execution, and device-level submits, same cid.
    EXPECT_GE(eventsOf(events, "execute", cid).size(), 1u);
    EXPECT_GE(eventsOf(events, "device.submit", cid).size(), 1u);

    // Everything this single-job service traced belongs to the job.
    for (const auto &ev : events)
        EXPECT_EQ(ev.correlation, cid) << ev.name;
}

TEST(TracingService, DeterministicStormLifecycleUnderOneCorrelationId)
{
    // Scripted faults, so the lifecycle is exact: attempt 1 lands on
    // dev0 and fails (failNext), the retry re-routes to dev1, where
    // profiling runs with a corrupt variant -- guard strike -- and the
    // healthy winner executes the remainder.
    FaultInjector cpu0Faults, cpu1Faults;
    cpu0Faults.failNext();
    cpu1Faults.setVariantFault("v-bad", VariantFaultKind::CorruptOutput);

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.runtime.guard.enabled = true;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&cpu0Faults);
    svc.device(1).setFaultInjector(&cpu1Faults);
    svc.tracer().setEnabled(true);
    svc.start();

    Probe p(2048);
    JobHandle h = svc.submit(stormJob(p, "k", 5.0f));
    const JobResult r = h.result();
    ASSERT_TRUE(r.ok()) << r.status.toString();
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.deviceIndex, 1u);
    svc.stop();

    const std::uint64_t cid = h.id();
    const auto events = svc.tracer().snapshot();

    // The full lifecycle under one correlation id: two queue spans
    // (one per attempt), the retry instant, >= 2 profiling passes
    // with variant names, the guard strike, and the winner execution.
    EXPECT_EQ(eventsOf(events, "queue", cid).size(), 2u);
    const auto retries = eventsOf(events, "retry", cid);
    ASSERT_EQ(retries.size(), 1u);
    std::set<std::string> passes;
    for (const auto &ev : events)
        if (ev.correlation == cid && ev.name.rfind("profile:", 0) == 0)
            passes.insert(ev.name);
    EXPECT_GE(passes.size(), 2u);
    EXPECT_TRUE(passes.count("profile:v-good"));

    const auto strikes = eventsOf(events, "guard.strike", cid);
    ASSERT_GE(strikes.size(), 1u);
    bool badStruck = false;
    for (const auto &ev : strikes)
        for (const auto &[k, v] : ev.args)
            if (k == "variant" && v == "v-bad")
                badStruck = true;
    EXPECT_TRUE(badStruck);
    EXPECT_GE(eventsOf(events, "execute", cid).size(), 1u);

    // The retry instant names both devices and the failure code.
    const auto &retry = retries[0];
    std::map<std::string, std::string> args(retry.args.begin(),
                                            retry.args.end());
    EXPECT_EQ(args["from"], "dev0");
    EXPECT_EQ(args["to"], "dev1");
    EXPECT_EQ(args["code"], "UNAVAILABLE");

    // Trace/counter reconciliation: span counts match the recovery
    // and guard counters the service exported.
    const auto &m = svc.metrics();
    EXPECT_EQ(svc.tracer().countNamed("retry"),
              m.counterValue("recover.retries"));
    EXPECT_EQ(svc.tracer().countNamed("guard.strike"),
              m.counterValue("guard.mismatch")
                  + m.counterValue("guard.redzone")
                  + m.counterValue("guard.nan")
                  + m.counterValue("guard.watchdog"));

    // And the export of this storm is structurally valid Chrome JSON.
    const Json root = Json::parse(svc.tracer().exportChromeTrace().dump());
    const auto &items = root.at("traceEvents").items();
    ASSERT_FALSE(items.empty());
    for (const auto &e : items) {
        const std::string ph = e.at("ph").asString();
        EXPECT_TRUE(ph == "M" || ph == "B" || ph == "E" || ph == "X"
                    || ph == "i")
            << ph;
        if (ph != "M")
            EXPECT_GE(e.at("ts").asNumber(), 0.0);
    }
}

TEST(TracingService, FailingJobCarriesFlightRecorderPayload)
{
    // One device, every attempt scripted to fail: the final Status
    // must carry the worker's flight-recorder dump naming the device
    // and the phases it went through.
    FaultInjector faults;
    faults.failNext(3);

    store::SelectionStore store;
    DispatchService svc(store);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.start();

    Probe p(2048);
    JobHandle h = svc.submit(stormJob(p, "k", 5.0f));
    const JobResult r = h.result();
    svc.stop();

    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.attempts, 3u);
    ASSERT_TRUE(r.status.hasPayload());
    const std::string &dump = r.status.payload();
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
    EXPECT_NE(dump.find("phase=failed"), std::string::npos);
    EXPECT_NE(dump.find("phase=claim"), std::string::npos);
    EXPECT_NE(dump.find("phase=launch"), std::string::npos);
    EXPECT_NE(dump.find("dev=" + r.deviceName), std::string::npos);
    EXPECT_NE(dump.find("job=" + std::to_string(r.id)),
              std::string::npos);

    // A successful job's status carries no payload.
    Probe p2(2048);
    store::SelectionStore store2;
    DispatchService svc2(store2);
    svc2.addDevice(std::make_unique<sim::CpuDevice>());
    svc2.start();
    const JobResult ok = svc2.submit(stormJob(p2, "k", 5.0f)).result();
    svc2.stop();
    ASSERT_TRUE(ok.ok());
    EXPECT_FALSE(ok.status.hasPayload());
}

// ---- Selection timeline ------------------------------------------------

TEST(TracingRuntime, LaunchReportCarriesStructuredSelectionTimeline)
{
    FaultInjector faults;
    faults.setVariantFault("v-bad", VariantFaultKind::CorruptOutput);

    sim::CpuDevice dev;
    dev.setFaultInjector(&faults);
    runtime::RuntimeConfig cfg;
    cfg.guard.enabled = true;
    runtime::Runtime grt(dev, cfg);
    registerPool(grt, "k", 5.0f);
    // v-good is blacklisted up front; v-good-slow (the registration
    // default) stays the healthy cross-check reference.
    grt.guard().blacklist("k", "v-good", "test");

    Probe p(2048);
    const auto report = grt.launchKernel("k", p.units, p.args,
                                         guardedOpt());
    EXPECT_EQ(report.selectedName, "v-good-slow");

    // One timeline entry per registered variant, registration order.
    ASSERT_EQ(report.timeline.size(), 3u);
    const auto &slow = report.timeline[0];
    const auto &bad = report.timeline[1];
    const auto &good = report.timeline[2];

    EXPECT_EQ(slow.variant, "v-good-slow");
    EXPECT_EQ(slow.guardOutcome, "pass");
    EXPECT_TRUE(slow.selected);
    EXPECT_GT(slow.units, 0u);
    EXPECT_GT(slow.metric, 0u);
    EXPECT_LT(slow.startTime, slow.endTime);

    EXPECT_EQ(bad.variant, "v-bad");
    EXPECT_EQ(bad.guardOutcome, "mismatch");
    EXPECT_FALSE(bad.selected);
    EXPECT_GT(bad.units, 0u);

    EXPECT_EQ(good.variant, "v-good");
    EXPECT_EQ(good.guardOutcome, "blacklisted");
    EXPECT_EQ(good.units, 0u);
    EXPECT_FALSE(good.selected);

    // The timeline reconciles with the flat profile list.
    std::uint64_t profiledUnits = 0;
    for (const auto &pass : report.timeline)
        profiledUnits += pass.units;
    EXPECT_EQ(profiledUnits, report.profiledUnits);
}

// ---- Learned selection instants ----------------------------------------

TEST(TracingService, PredictInstantsCorrelateAndReconcileWithCounters)
{
    // Three jobs exercise every predict.* emission path under the
    // tracer: job 1 runs against a cold model (predict.miss, full
    // profile trains the predictor), job 2 runs after store.clear()
    // so the exact winner serves a profiling-free predict.hit, and
    // job 3 is predicted again but its warm launch is scripted to
    // fail -- the demotion observer fires predict.demoted on the
    // worker thread under the failing job's correlation id, and the
    // retry falls back to a corrective profiling pass.
    FaultInjector faults;

    store::SelectionStore store;
    predict::SelectionPredictor predictor;
    DispatchService svc(store);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.setPredictor(&predictor);
    svc.tracer().setEnabled(true);
    svc.start();

    Probe p1(2048);
    JobHandle h1 = svc.submit(stormJob(p1, "k", 5.0f));
    const JobResult r1 = h1.result();
    ASSERT_TRUE(r1.ok()) << r1.status.toString();
    EXPECT_FALSE(r1.predicted);
    EXPECT_GT(r1.report.profiledUnits, 0u);

    store.clear();
    Probe p2(2048);
    JobHandle h2 = svc.submit(stormJob(p2, "k", 5.0f));
    const JobResult r2 = h2.result();
    ASSERT_TRUE(r2.ok()) << r2.status.toString();
    EXPECT_TRUE(r2.predicted);
    EXPECT_EQ(r2.report.profiledUnits, 0u);

    store.clear();
    faults.failNext();
    Probe p3(2048);
    JobHandle h3 = svc.submit(stormJob(p3, "k", 5.0f));
    const JobResult r3 = h3.result();
    ASSERT_TRUE(r3.ok()) << r3.status.toString();
    EXPECT_EQ(r3.attempts, 2u);
    svc.stop();

    const auto events = svc.tracer().snapshot();

    // Job 1: one predict.miss under its own correlation id.
    ASSERT_EQ(eventsOf(events, "predict.miss", h1.id()).size(), 1u);
    EXPECT_TRUE(eventsOf(events, "predict.hit", h1.id()).empty());

    // Job 2: one predict.hit naming the winner, its calibrated
    // confidence, and the exact-winner evidence source.
    const auto hits = eventsOf(events, "predict.hit", h2.id());
    ASSERT_EQ(hits.size(), 1u);
    std::map<std::string, std::string> hitArgs(hits[0].args.begin(),
                                               hits[0].args.end());
    EXPECT_FALSE(hitArgs["variant"].empty());
    EXPECT_EQ(hitArgs["source"], "exact");
    EXPECT_EQ(hitArgs["distance"], "0");
    EXPECT_GE(std::stod(hitArgs["confidence"]), 0.65);

    // Job 3: predicted hit, demotion, then a corrective miss -- all
    // three instants under the failing job's correlation id.
    ASSERT_EQ(eventsOf(events, "predict.hit", h3.id()).size(), 1u);
    const auto demoted = eventsOf(events, "predict.demoted", h3.id());
    ASSERT_EQ(demoted.size(), 1u);
    std::map<std::string, std::string> demArgs(demoted[0].args.begin(),
                                               demoted[0].args.end());
    EXPECT_EQ(demArgs["signature"], "k");
    EXPECT_EQ(demArgs["variant"], hitArgs["variant"]);
    ASSERT_EQ(eventsOf(events, "predict.miss", h3.id()).size(), 1u);

    // Trace/counter reconciliation: every predict.* counter increment
    // has exactly one matching tracer instant, and the totals match
    // the scripted lifecycle (2 hits, 2 misses, 1 demotion).
    const auto &m = svc.metrics();
    EXPECT_EQ(svc.tracer().countNamed("predict.hit"),
              m.counterValue("predict.hit"));
    EXPECT_EQ(svc.tracer().countNamed("predict.miss"),
              m.counterValue("predict.miss"));
    EXPECT_EQ(svc.tracer().countNamed("predict.demoted"),
              m.counterValue("predict.demoted"));
    EXPECT_EQ(m.counterValue("predict.hit"), 2u);
    EXPECT_EQ(m.counterValue("predict.miss"), 2u);
    EXPECT_EQ(m.counterValue("predict.demoted"), 1u);
    EXPECT_EQ(m.counterValue("predict.train"), 2u);
    EXPECT_EQ(predictor.demotions(), 1u);

    // Both exports carry the predict.* families.
    const std::string prom = m.renderPrometheus();
    EXPECT_NE(prom.find("predict_hit 2"), std::string::npos);
    EXPECT_NE(prom.find("predict_miss 2"), std::string::npos);
    EXPECT_NE(prom.find("predict_demoted 1"), std::string::npos);
    EXPECT_NE(prom.find("predict_train 2"), std::string::npos);
    const std::string text = m.renderText();
    EXPECT_NE(text.find("predict.hit 2"), std::string::npos);
    EXPECT_NE(text.find("predict.demoted 1"), std::string::npos);
}

// ---- Metrics export ----------------------------------------------------

TEST(Metrics, LabeledBuildsTheCanonicalSuffixForm)
{
    EXPECT_EQ(MetricsRegistry::labeled("device.jobs", "device", "dev0"),
              "device.jobs{device=\"dev0\"}");
}

TEST(Metrics, LabeledEscapesHostileLabelValues)
{
    // Backslash, double quote, and newline are the three characters
    // the 0.0.4 text format requires escaping inside a label value; a
    // device name carrying all of them must not corrupt the set.
    EXPECT_EQ(MetricsRegistry::escapeLabelValue("a\\b\"c\nd"),
              "a\\\\b\\\"c\\nd");
    EXPECT_EQ(MetricsRegistry::labeled("device.jobs", "device",
                                       "dev\"0\\evil\nname"),
              "device.jobs{device=\"dev\\\"0\\\\evil\\nname\"}");
}

TEST(Metrics, PrometheusSurvivesAHostileDeviceLabel)
{
    MetricsRegistry reg;
    reg.counter(MetricsRegistry::labeled("device.jobs", "device",
                                         "dev\"0\\x\ny"))
        .inc(7);

    const std::string prom = reg.renderPrometheus();
    // The hostile value renders escaped, on one line.
    EXPECT_NE(prom.find("device_jobs{device=\"dev\\\"0\\\\x\\ny\"} 7"),
              std::string::npos);
    // No exposition line is torn: every line is a comment or ends in
    // a numeric sample value.
    std::istringstream is(prom);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
    }
}

TEST(Metrics, PrometheusEmitsHelpOncePerFamily)
{
    MetricsRegistry reg;
    reg.counter(MetricsRegistry::labeled("device.jobs", "device", "dev0"))
        .inc();
    reg.counter(MetricsRegistry::labeled("device.jobs", "device", "dev1"))
        .inc();
    reg.histogram("lat.ns").observe(4);

    const std::string prom = reg.renderPrometheus();
    const auto firstHelp = prom.find("# HELP device_jobs ");
    ASSERT_NE(firstHelp, std::string::npos);
    EXPECT_EQ(prom.find("# HELP device_jobs ", firstHelp + 1),
              std::string::npos);
    EXPECT_NE(prom.find("# HELP lat_ns "), std::string::npos);
    // HELP precedes TYPE for each family.
    EXPECT_LT(firstHelp, prom.find("# TYPE device_jobs counter"));
}

TEST(Metrics, PrometheusRendersCountersWithLabelsAndSanitizedNames)
{
    MetricsRegistry reg;
    reg.counter(MetricsRegistry::labeled("device.jobs", "device", "dev0"))
        .inc(3);
    reg.counter(MetricsRegistry::labeled("device.jobs", "device", "dev1"))
        .inc(5);
    reg.counter("store.hit").inc(2);

    const std::string prom = reg.renderPrometheus();
    EXPECT_NE(prom.find("# TYPE device_jobs counter"), std::string::npos);
    EXPECT_NE(prom.find("device_jobs{device=\"dev0\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("device_jobs{device=\"dev1\"} 5"),
              std::string::npos);
    EXPECT_NE(prom.find("store_hit 2"), std::string::npos);
    // One TYPE line per family, not per labeled sample.
    const auto first = prom.find("# TYPE device_jobs counter");
    EXPECT_EQ(prom.find("# TYPE device_jobs counter", first + 1),
              std::string::npos);
}

TEST(Metrics, PrometheusRendersCumulativeHistogramBuckets)
{
    MetricsRegistry reg;
    auto &h = reg.histogram("lat.ns");
    h.observe(1);
    h.observe(3);
    h.observe(100);

    const std::string prom = reg.renderPrometheus();
    EXPECT_NE(prom.find("# TYPE lat_ns histogram"), std::string::npos);
    // Power-of-two bounds, cumulative counts.
    EXPECT_NE(prom.find("lat_ns_bucket{le=\"2\"} 1"), std::string::npos);
    EXPECT_NE(prom.find("lat_ns_bucket{le=\"4\"} 2"), std::string::npos);
    EXPECT_NE(prom.find("lat_ns_bucket{le=\"128\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("lat_ns_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("lat_ns_sum 104"), std::string::npos);
    EXPECT_NE(prom.find("lat_ns_count 3"), std::string::npos);
}

TEST(Metrics, PrometheusHistogramLabelsLandOnEverySample)
{
    MetricsRegistry reg;
    reg.histogram(
           MetricsRegistry::labeled("device.latency_ns", "device", "dev0"))
        .observe(10);

    const std::string prom = reg.renderPrometheus();
    EXPECT_NE(prom.find(
                  "device_latency_ns_bucket{device=\"dev0\",le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("device_latency_ns_sum{device=\"dev0\"} 10"),
              std::string::npos);
    EXPECT_NE(prom.find("device_latency_ns_count{device=\"dev0\"} 1"),
              std::string::npos);
}

TEST(Metrics, TextExportIsNameSortedWithP90AndP95)
{
    MetricsRegistry reg;
    // Created deliberately out of name order.
    reg.counter("zeta").inc();
    reg.histogram("mid.latency").observe(4);
    reg.counter("alpha").inc(2);

    const std::string text = reg.renderText();
    const auto posAlpha = text.find("alpha 2");
    const auto posMid = text.find("mid.latency{");
    const auto posZeta = text.find("zeta 1");
    ASSERT_NE(posAlpha, std::string::npos);
    ASSERT_NE(posMid, std::string::npos);
    ASSERT_NE(posZeta, std::string::npos);
    EXPECT_LT(posAlpha, posMid);
    EXPECT_LT(posMid, posZeta);
    EXPECT_NE(text.find("p90="), std::string::npos);
    EXPECT_NE(text.find("p95="), std::string::npos);
}

TEST(Metrics, QuantilesClampToTheObservedMax)
{
    MetricsRegistry reg;
    auto &h = reg.histogram("one");
    h.observe(3);
    // A single sample of 3 lands in bucket [2,4); the raw bucket
    // upper bound (4) must not leak past the observed max.
    EXPECT_EQ(h.quantile(0.5), 3.0);
    EXPECT_EQ(h.quantile(0.99), 3.0);

    auto &empty = reg.histogram("none");
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    EXPECT_EQ(empty.count(), 0u);
    // An empty histogram renders without NaN/Inf artifacts.
    const std::string text = reg.renderText();
    EXPECT_NE(text.find("none{count=0"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
}
