/**
 * @file
 * Property tests of the federation merge rule (DESIGN §13).
 *
 * The fleet's correctness claim is algebraic: mergeRecord /
 * mergeBlacklist / mergeExtension form a join semilattice
 * (commutative, associative, idempotent), so replicas applying the
 * same set of writes in ANY interleaving -- shuffled, duplicated,
 * partitioned and healed late -- reach byte-identical stores.  This
 * suite checks the laws directly on randomized pairs/triples, then
 * replays thousands of seeded shuffled interleavings through
 * SelectionStore::applyRemote*() and asserts convergence via the
 * serialized document.
 *
 * Deterministic on purpose: one fixed seed, no wall-clock anywhere.
 * A failure reproduces exactly.
 */
#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>
#include <gtest/gtest.h>

#include "dysel/fed/merge.hh"
#include "dysel/store/selection_store.hh"

using namespace dysel;
using namespace dysel::store;
using fed::Stamp;

namespace {

constexpr const char *kDev = "cpu/test-device/c8@3.60GHz";

/** One record version: a payload qualified by (tick, origin). */
SelectionRecord
makeRecord(const std::string &sig, unsigned bucket, std::uint64_t tick,
           std::uint32_t origin, const std::string &variant,
           std::uint64_t launches)
{
    SelectionRecord rec;
    rec.signature = sig;
    rec.device = kDev;
    rec.bucket = bucket;
    rec.selected = variant == "fast" ? 1 : 0;
    rec.selectedName = variant;
    rec.profiles = {{"slow", 4000, 4200, 3900, 128},
                    {"fast", 1000, 1100, 950, 128}};
    rec.launches = launches;
    rec.profiledLaunches = 1;
    rec.unitTimeNs = 10.0 + static_cast<double>(tick);
    rec.stamp = Stamp{tick, origin};
    rec.vv.observe(origin, tick);
    rec.profileCid = tick * 100 + origin;
    rec.profileOrigin = origin;
    return rec;
}

BlacklistEntry
makeBlacklist(const std::string &sig, std::uint64_t tick,
              std::uint32_t origin, std::uint64_t strikes)
{
    BlacklistEntry e;
    e.signature = sig;
    e.variant = "oob-writer";
    e.device = kDev;
    e.reason = "redzone@" + std::to_string(origin);
    e.strikes = strikes;
    e.stamp = Stamp{tick, origin};
    return e;
}

ExtensionEntry
makeExtension(const std::string &name, std::uint64_t tick,
              std::uint32_t origin)
{
    ExtensionEntry e;
    e.name = name;
    support::Json v = support::Json::object();
    v.set("trained_by", support::Json(origin));
    v.set("rounds", support::Json(tick));
    e.value = std::move(v);
    e.stamp = Stamp{tick, origin};
    return e;
}

/** Serialized identity: what "byte-identical stores" means. */
std::string
dumpOf(const SelectionRecord &rec)
{
    return recordToJson(rec).dump(0);
}

std::string
dumpOf(const BlacklistEntry &e)
{
    return blacklistToJson(e).dump(0);
}

std::string
dumpOf(const ExtensionEntry &e)
{
    support::Json doc = support::Json::object();
    doc.set("name", support::Json(e.name));
    doc.set("value", e.value);
    doc.set("tick", support::Json(e.stamp.tick));
    doc.set("origin", support::Json(e.stamp.origin));
    return doc.dump(0);
}

/** Draw a record version with a fresh, never-repeated stamp. */
SelectionRecord
randomRecord(std::mt19937_64 &rng,
             std::set<std::pair<std::uint64_t, std::uint32_t>> &used,
             const std::string &sig, unsigned bucket)
{
    for (;;) {
        const std::uint64_t tick = rng() % 64 + 1;
        const auto origin = static_cast<std::uint32_t>(rng() % 5);
        if (!used.insert({tick, origin}).second)
            continue; // (tick, origin) pairs are unique in real runs
        const char *variant = rng() % 2 ? "fast" : "slow";
        return makeRecord(sig, bucket, tick, origin, variant,
                          rng() % 100);
    }
}

} // namespace

TEST(FedMerge, RecordLawsHoldOnRandomizedTriples)
{
    std::mt19937_64 rng(0xD75E1u);
    for (int round = 0; round < 500; ++round) {
        std::set<std::pair<std::uint64_t, std::uint32_t>> used;
        const auto a = randomRecord(rng, used, "k", 11);
        const auto b = randomRecord(rng, used, "k", 11);
        const auto c = randomRecord(rng, used, "k", 11);

        // Commutative, idempotent, associative.
        EXPECT_EQ(dumpOf(fed::mergeRecord(a, b)),
                  dumpOf(fed::mergeRecord(b, a)));
        EXPECT_EQ(dumpOf(fed::mergeRecord(a, a)), dumpOf(a));
        EXPECT_EQ(dumpOf(fed::mergeRecord(fed::mergeRecord(a, b), c)),
                  dumpOf(fed::mergeRecord(a, fed::mergeRecord(b, c))));

        // Freshest evidence wins; histories always join.
        const auto m = fed::mergeRecord(a, b);
        const auto &winner = fed::newerStamp(b.stamp, a.stamp) ? b : a;
        EXPECT_EQ(m.selectedName, winner.selectedName);
        EXPECT_EQ(m.stamp.tick, winner.stamp.tick);
        EXPECT_EQ(m.stamp.origin, winner.stamp.origin);
        EXPECT_TRUE(m.vv.contains(a.vv));
        EXPECT_TRUE(m.vv.contains(b.vv));
    }
}

TEST(FedMerge, BlacklistLawsHoldAndStrikesNeverShrink)
{
    std::mt19937_64 rng(0xB1AC5u);
    for (int round = 0; round < 500; ++round) {
        const auto a = makeBlacklist("k", rng() % 64 + 1,
                                     static_cast<std::uint32_t>(rng() % 5),
                                     rng() % 10 + 1);
        const auto b = makeBlacklist("k", rng() % 64 + 1,
                                     static_cast<std::uint32_t>(rng() % 5),
                                     rng() % 10 + 1);
        const auto c = makeBlacklist("k", rng() % 64 + 1,
                                     static_cast<std::uint32_t>(rng() % 5),
                                     rng() % 10 + 1);
        EXPECT_EQ(dumpOf(fed::mergeBlacklist(a, b)),
                  dumpOf(fed::mergeBlacklist(b, a)));
        EXPECT_EQ(dumpOf(fed::mergeBlacklist(a, a)), dumpOf(a));
        EXPECT_EQ(
            dumpOf(fed::mergeBlacklist(fed::mergeBlacklist(a, b), c)),
            dumpOf(fed::mergeBlacklist(a, fed::mergeBlacklist(b, c))));

        // Grow-only: the merged strike count dominates both sides,
        // whichever stamp carried the reason.
        const auto m = fed::mergeBlacklist(a, b);
        EXPECT_GE(m.strikes, a.strikes);
        EXPECT_GE(m.strikes, b.strikes);
    }
}

TEST(FedMerge, ExtensionLawsHold)
{
    std::mt19937_64 rng(0xE47E9u);
    for (int round = 0; round < 500; ++round) {
        const auto a = makeExtension("model", rng() % 64 + 1,
                                     static_cast<std::uint32_t>(rng() % 5));
        const auto b = makeExtension("model", rng() % 64 + 1,
                                     static_cast<std::uint32_t>(rng() % 5));
        const auto c = makeExtension("model", rng() % 64 + 1,
                                     static_cast<std::uint32_t>(rng() % 5));
        EXPECT_EQ(dumpOf(fed::mergeExtension(a, b)),
                  dumpOf(fed::mergeExtension(b, a)));
        EXPECT_EQ(dumpOf(fed::mergeExtension(a, a)), dumpOf(a));
        EXPECT_EQ(
            dumpOf(fed::mergeExtension(fed::mergeExtension(a, b), c)),
            dumpOf(fed::mergeExtension(a, fed::mergeExtension(b, c))));
    }
}

TEST(FedMerge, EqualTicksResolveByOriginEverywhere)
{
    // Concurrent writes can collide on the tick; the origin tie-break
    // must pick the same winner at every replica.
    const auto a = makeRecord("k", 11, 7, 1, "slow", 3);
    const auto b = makeRecord("k", 11, 7, 4, "fast", 9);
    const auto ab = fed::mergeRecord(a, b);
    const auto ba = fed::mergeRecord(b, a);
    EXPECT_EQ(dumpOf(ab), dumpOf(ba));
    EXPECT_EQ(ab.selectedName, "fast"); // higher origin wins the tie
    EXPECT_EQ(ab.stamp.origin, 4u);
}

TEST(FedMerge, ApplyRemoteClassifiesAppliedMergedStale)
{
    SelectionStore store;
    store.setReplica(0);

    // A remote record over empty local state installs.
    const auto v1 = makeRecord("k", 11, 5, 1, "slow", 1);
    EXPECT_EQ(store.applyRemoteRecord(v1), SelectionStore::Apply::Applied);

    // The identical record again: fully covered, a no-op.
    EXPECT_EQ(store.applyRemoteRecord(v1), SelectionStore::Apply::Stale);

    // An older stamp with an unseen history: payload keeps, vv grows.
    auto old = makeRecord("k", 11, 3, 2, "fast", 8);
    EXPECT_EQ(store.applyRemoteRecord(old),
              SelectionStore::Apply::Merged);
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "slow"); // the fresher payload held
    EXPECT_TRUE(rec->vv.contains(old.vv));

    // A fresher stamp replaces the payload.
    const auto v2 = makeRecord("k", 11, 9, 2, "fast", 2);
    EXPECT_EQ(store.applyRemoteRecord(v2), SelectionStore::Apply::Applied);
    rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "fast");

    // Blacklist: same classification, plus grow-only strikes.
    const auto b1 = makeBlacklist("k", 4, 1, 6);
    EXPECT_EQ(store.applyRemoteBlacklist(b1),
              SelectionStore::Apply::Applied);
    EXPECT_EQ(store.applyRemoteBlacklist(makeBlacklist("k", 2, 0, 1)),
              SelectionStore::Apply::Stale);
    EXPECT_EQ(store.applyRemoteBlacklist(makeBlacklist("k", 2, 0, 9)),
              SelectionStore::Apply::Merged);
    ASSERT_EQ(store.blacklistEntries().size(), 1u);
    EXPECT_EQ(store.blacklistEntries()[0].strikes, 9u);

    // Extensions: pure last-writer-wins.
    EXPECT_EQ(store.applyRemoteExtension(makeExtension("m", 5, 1)),
              SelectionStore::Apply::Applied);
    EXPECT_EQ(store.applyRemoteExtension(makeExtension("m", 4, 4)),
              SelectionStore::Apply::Stale);
    EXPECT_EQ(store.applyRemoteExtension(makeExtension("m", 6, 0)),
              SelectionStore::Apply::Applied);
    EXPECT_EQ(store.extension("m")->intOr("rounds", 0), 6);
}

TEST(FedMerge, ThousandsOfShuffledInterleavingsConverge)
{
    // The headline property: every store that absorbs the same SET of
    // writes -- in its own shuffled order, with duplicates -- ends up
    // byte-identical.  400 rounds x 5 replicas = 2000 distinct
    // interleavings, all from one seed.
    std::mt19937_64 rng(0xFEDC0DEu);
    constexpr int kRounds = 400;
    constexpr int kReplicas = 5;

    for (int round = 0; round < kRounds; ++round) {
        // One round's write set: a few keys, several versions each,
        // plus contended blacklist entries and extensions.
        std::vector<SelectionRecord> recWrites;
        std::vector<BlacklistEntry> blWrites;
        std::vector<ExtensionEntry> extWrites;
        const unsigned keys = 2 + static_cast<unsigned>(rng() % 4);
        for (unsigned k = 0; k < keys; ++k) {
            std::set<std::pair<std::uint64_t, std::uint32_t>> used;
            const std::string sig = "sig" + std::to_string(k);
            const unsigned versions = 1 + static_cast<unsigned>(rng() % 4);
            for (unsigned v = 0; v < versions; ++v)
                recWrites.push_back(randomRecord(rng, used, sig, 11));
        }
        for (int i = 0; i < 3; ++i)
            blWrites.push_back(makeBlacklist(
                "sig0", rng() % 64 + 1,
                static_cast<std::uint32_t>(rng() % 5), rng() % 10 + 1));
        for (int i = 0; i < 3; ++i)
            extWrites.push_back(makeExtension(
                "model", rng() % 64 + 1,
                static_cast<std::uint32_t>(rng() % 5)));

        // Index the writes as (kind, index) so one shuffle covers all
        // three item types interleaved.
        std::vector<std::pair<int, std::size_t>> ops;
        for (std::size_t i = 0; i < recWrites.size(); ++i)
            ops.push_back({0, i});
        for (std::size_t i = 0; i < blWrites.size(); ++i)
            ops.push_back({1, i});
        for (std::size_t i = 0; i < extWrites.size(); ++i)
            ops.push_back({2, i});

        std::vector<std::string> finals;
        for (int r = 0; r < kReplicas; ++r) {
            auto seq = ops;
            std::shuffle(seq.begin(), seq.end(), rng);
            // Duplicate a random prefix back in: redelivery.
            const std::size_t dup = rng() % (seq.size() + 1);
            seq.insert(seq.end(), seq.begin(),
                       seq.begin() + static_cast<std::ptrdiff_t>(dup));
            std::shuffle(seq.begin(), seq.end(), rng);

            SelectionStore store;
            store.setReplica(static_cast<std::uint32_t>(r));
            for (const auto &[kind, idx] : seq) {
                if (kind == 0)
                    store.applyRemoteRecord(recWrites[idx]);
                else if (kind == 1)
                    store.applyRemoteBlacklist(blWrites[idx]);
                else
                    store.applyRemoteExtension(extWrites[idx]);
            }
            finals.push_back(store.toJson().dump(0));
        }
        for (int r = 1; r < kReplicas; ++r)
            ASSERT_EQ(finals[0], finals[static_cast<std::size_t>(r)])
                << "round " << round << " replica " << r
                << " diverged";
    }
}
