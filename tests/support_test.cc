/**
 * @file
 * Unit tests for the support library: RNG, statistics, tables, math
 * helpers, logging levels, JSON, and the metrics registry.
 */
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/math_util.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace dysel::support;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[r.nextBelow(8)];
    for (int bucket : seen) {
        EXPECT_GT(bucket, 700);
        EXPECT_LT(bucket, 1300);
    }
}

TEST(Rng, NextInRangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoublesInUnitInterval)
{
    Rng r(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliProbability)
{
    Rng r(17);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += r.nextBool(0.3);
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Summary, Empty)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_NEAR(geoMean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(MathUtil, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(8, 4), 8u);
}

TEST(MathUtil, LcmAll)
{
    EXPECT_EQ(lcmAll({1}), 1u);
    EXPECT_EQ(lcmAll({2, 3}), 6u);
    EXPECT_EQ(lcmAll({4, 6, 8}), 24u);
    EXPECT_EQ(lcmAll({1, 16, 64, 128}), 128u);
}

TEST(MathUtil, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
}

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.row().cell("a").cell(1.5, 1);
    t.row().cell("longer").cell(std::uint64_t{42});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().cell("x").cell(std::uint64_t{7});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,7\n");
}

TEST(Logging, ThresholdControlsOutput)
{
    const LogLevel before = logThreshold();
    {
        LogSilencer silence(LogLevel::Panic);
        EXPECT_EQ(logThreshold(), LogLevel::Panic);
        warn("this warning must be suppressed by the silencer");
    }
    EXPECT_EQ(logThreshold(), before);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("intentional test panic"), "");
}

TEST(Json, ParseDumpRoundTrip)
{
    const std::string text = R"({"a":[1,2.5,-3],"b":{"c":true,)"
                             R"("d":null,"e":"hi\n\"there\""}})";
    Json v = Json::parse(text);
    EXPECT_EQ(v.at("a").items().size(), 3u);
    EXPECT_EQ(v.at("a").items()[0].asInt(), 1);
    EXPECT_DOUBLE_EQ(v.at("a").items()[1].asNumber(), 2.5);
    EXPECT_EQ(v.at("a").items()[2].asInt(), -3);
    EXPECT_TRUE(v.at("b").at("c").asBool());
    EXPECT_TRUE(v.at("b").at("d").isNull());
    EXPECT_EQ(v.at("b").at("e").asString(), "hi\n\"there\"");

    // dump -> parse is the identity.
    Json again = Json::parse(v.dump());
    EXPECT_EQ(again.dump(), v.dump());
    Json pretty = Json::parse(v.dump(2));
    EXPECT_EQ(pretty.dump(), v.dump());
}

TEST(Json, BuildersAndDefaults)
{
    Json obj = Json::object();
    obj.set("n", Json(std::uint64_t{1234567890123ull}));
    obj.set("s", Json("x"));
    Json arr = Json::array();
    arr.push(Json(1));
    obj.set("a", std::move(arr));
    EXPECT_EQ(obj.at("n").asUint(), 1234567890123ull);
    EXPECT_EQ(obj.numberOr("missing", 7.0), 7.0);
    EXPECT_EQ(obj.stringOr("s", ""), "x");
    EXPECT_FALSE(obj.has("missing"));
    EXPECT_TRUE(obj.boolOr("missing", true));
}

TEST(Json, ParseErrorsCarryOffsets)
{
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,2"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1] trailing"), std::runtime_error);
    try {
        Json::parse("{\"a\": nope}");
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos);
    }
}

TEST(Metrics, CountersAccumulateAcrossThreads)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("jobs");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < 1000; ++i)
                c.inc();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(reg.counterValue("jobs"), 4000u);
    EXPECT_EQ(reg.counterValue("absent"), 0u);
    // counter() returns the same instance for the same name.
    EXPECT_EQ(&reg.counter("jobs"), &c);
}

TEST(Metrics, HistogramStatistics)
{
    Histogram h;
    for (double v : {1.0, 2.0, 4.0, 8.0, 1024.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 1039.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1024.0);
    EXPECT_NEAR(h.mean(), 1039.0 / 5.0, 1e-9);
    // p50 lands in the bucket holding the 3rd sample (4.0 -> [4,8)).
    EXPECT_GE(h.quantile(0.5), 4.0);
    EXPECT_LE(h.quantile(0.5), 8.0);
    EXPECT_GE(h.quantile(1.0), 1024.0);
}

TEST(Metrics, RenderTextAndJson)
{
    MetricsRegistry reg;
    reg.counter("store.hit").inc(3);
    reg.histogram("lat").observe(10.0);
    const std::string text = reg.renderText();
    EXPECT_NE(text.find("store.hit 3"), std::string::npos);
    EXPECT_NE(text.find("lat{"), std::string::npos);
    const Json json = reg.renderJson();
    EXPECT_EQ(json.at("counters").at("store.hit").asUint(), 3u);
    EXPECT_EQ(json.at("histograms").at("lat").at("count").asUint(), 1u);
}
