/**
 * @file
 * Unit tests for the support library: RNG, statistics, tables, math
 * helpers, and logging levels.
 */
#include <sstream>

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/math_util.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace dysel::support;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[r.nextBelow(8)];
    for (int bucket : seen) {
        EXPECT_GT(bucket, 700);
        EXPECT_LT(bucket, 1300);
    }
}

TEST(Rng, NextInRangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoublesInUnitInterval)
{
    Rng r(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliProbability)
{
    Rng r(17);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += r.nextBool(0.3);
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Summary, Empty)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_NEAR(geoMean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(MathUtil, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(8, 4), 8u);
}

TEST(MathUtil, LcmAll)
{
    EXPECT_EQ(lcmAll({1}), 1u);
    EXPECT_EQ(lcmAll({2, 3}), 6u);
    EXPECT_EQ(lcmAll({4, 6, 8}), 24u);
    EXPECT_EQ(lcmAll({1, 16, 64, 128}), 128u);
}

TEST(MathUtil, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
}

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.row().cell("a").cell(1.5, 1);
    t.row().cell("longer").cell(std::uint64_t{42});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().cell("x").cell(std::uint64_t{7});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,7\n");
}

TEST(Logging, ThresholdControlsOutput)
{
    const LogLevel before = logThreshold();
    {
        LogSilencer silence(LogLevel::Panic);
        EXPECT_EQ(logThreshold(), LogLevel::Panic);
        warn("this warning must be suppressed by the silencer");
    }
    EXPECT_EQ(logThreshold(), before);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("intentional test panic"), "");
}
