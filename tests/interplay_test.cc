/**
 * @file
 * Cross-component interplay tests: exclusive profiling vs eager work
 * on the GPU, wide (float4) loads in the coalescer, mixed-mode cached
 * execution errors, and selection-cache scoping.
 */
#include <gtest/gtest.h>

#include "dysel/mixed.hh"
#include "dysel/runtime.hh"
#include "kdp/context.hh"
#include "sim/gpu/gpu_cost_model.hh"
#include "sim/gpu/gpu_device.hh"

using namespace dysel;

namespace {

kdp::KernelVariant
idKernel(const char *name, std::uint64_t flops = 8)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = 64;
    v.sandboxIndex = {0};
    v.fn = [flops](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        auto &out = args.buf<std::uint32_t>(0);
        kdp::forEachItem(g, [&](kdp::ItemCtx &item) {
            item.store(out, item.globalId(), 1u);
            item.flops(flops);
        });
    };
    return v;
}

} // namespace

TEST(Interplay, ExclusiveProfilingBlocksEagerWorkUntilDrained)
{
    sim::GpuDevice dev;
    auto variant = idKernel("k");
    kdp::Buffer<std::uint32_t> out(64 * 64, kdp::MemSpace::Global, "out");

    sim::LaunchStats excl_stats, eager_stats;
    sim::Launch excl;
    excl.variant = &variant;
    excl.args.add(out);
    excl.numGroups = 13;
    excl.stream = 1;
    excl.priority = 1;
    excl.exclusive = true;
    excl.onComplete = [&](const sim::LaunchStats &s) { excl_stats = s; };

    sim::Launch eager;
    eager.variant = &variant;
    eager.args.add(out);
    eager.firstGroup = 13;
    eager.numGroups = 13;
    eager.stream = 0;
    eager.priority = 0;
    eager.onComplete = [&](const sim::LaunchStats &s) {
        eager_stats = s;
    };

    dev.submit(std::move(excl));
    dev.submit(std::move(eager));
    dev.run();
    // The eager launch must not overlap the exclusive one.
    EXPECT_GE(eager_stats.firstStamp, excl_stats.lastStamp);
}

TEST(Interplay, ExclusiveWaitsForRunningEagerWork)
{
    sim::GpuDevice dev;
    auto variant = idKernel("k");
    kdp::Buffer<std::uint32_t> out(64 * 64, kdp::MemSpace::Global, "out");

    sim::LaunchStats eager_stats, excl_stats;
    sim::Launch eager;
    eager.variant = &variant;
    eager.args.add(out);
    eager.numGroups = 13;
    eager.stream = 0;
    eager.onComplete = [&](const sim::LaunchStats &s) {
        eager_stats = s;
    };
    dev.submit(std::move(eager));

    sim::Launch excl;
    excl.variant = &variant;
    excl.args.add(out);
    excl.firstGroup = 13;
    excl.numGroups = 13;
    excl.stream = 1;
    excl.priority = 1;
    excl.exclusive = true;
    excl.onComplete = [&](const sim::LaunchStats &s) { excl_stats = s; };
    dev.submit(std::move(excl));
    dev.run();
    // Even at higher priority, the exclusive launch starts only on an
    // empty device.
    EXPECT_GE(excl_stats.firstStamp, eager_stats.lastStamp);
}

TEST(Interplay, WideLoadsCoalesceAsSingleTransactions)
{
    // A float4 load (16B) per lane = half a 128B segment per 8 lanes:
    // the warp op should cost 4 transactions, same as 4 scalar
    // consecutive loads per lane would, but in one instruction slot.
    kdp::Buffer<float> buf(1 << 16, kdp::MemSpace::Global, "b");
    sim::GpuConfig cfg;
    sim::GpuSmState sm(cfg.tex);
    sim::Cache l2(cfg.l2);

    kdp::WorkGroupTrace wide;
    wide.reset(32);
    {
        kdp::GroupCtx g(0, 32, 1, &wide);
        float tmp[4];
        for (unsigned lane = 0; lane < 32; ++lane)
            g.loadSpan(buf, std::uint64_t{lane} * 4, 4, lane, tmp);
    }
    const auto wide_cost = sim::gpuWorkGroupCost(wide, {}, 32, sm, l2,
                                                 cfg.cost);

    sim::GpuSmState sm2(cfg.tex);
    sim::Cache l22(cfg.l2);
    kdp::WorkGroupTrace scalar;
    scalar.reset(32);
    {
        kdp::GroupCtx g(0, 32, 1, &scalar);
        for (unsigned rep = 0; rep < 4; ++rep)
            for (unsigned lane = 0; lane < 32; ++lane)
                g.load(buf, std::uint64_t{lane} * 4 + rep, lane);
    }
    const auto scalar_cost = sim::gpuWorkGroupCost(scalar, {}, 32, sm2,
                                                   l22, cfg.cost);
    // One wide instruction beats four scalar instructions (fewer
    // issue slots), touching the same segments.
    EXPECT_LT(wide_cost.throughputCycles, scalar_cost.throughputCycles);
}

TEST(InterplayDeath, MixedCachedRejectsMismatchedSelection)
{
    sim::GpuDevice dev;
    runtime::Runtime rt(dev);
    rt.addKernel("k", idKernel("a"));
    rt.addKernel("k", idKernel("b", 64));

    kdp::Buffer<std::uint32_t> out(64 * 512, kdp::MemSpace::Global,
                                   "out");
    kdp::KernelArgs args;
    args.add(out);
    const auto report =
        runtime::launchKernelMixed(rt, "k", 512, args, 2);
    ASSERT_GE(report.segmentSelection.size(), 1u);
    // Replaying with the wrong workload size must be rejected -- as a
    // typed InvalidArgument, thrown by the wrapper, not a process
    // abort (callers can catch and re-profile).
    const auto st = runtime::tryLaunchKernelMixedCached(rt, "k", 256,
                                                        args, report);
    EXPECT_EQ(st.code(), support::StatusCode::InvalidArgument);
    EXPECT_THROW(runtime::launchKernelMixedCached(rt, "k", 256, args,
                                                  report),
                 std::invalid_argument);
}

TEST(Interplay, SelectionCacheIsPerSignature)
{
    sim::GpuDevice dev;
    runtime::Runtime rt(dev);
    rt.addKernel("one", idKernel("a"));
    rt.addKernel("one", idKernel("b", 64));
    rt.addKernel("two", idKernel("c", 64));
    rt.addKernel("two", idKernel("d"));

    kdp::Buffer<std::uint32_t> out(64 * 2048, kdp::MemSpace::Global,
                                   "out");
    kdp::KernelArgs args;
    args.add(out);

    rt.launchKernel("one", 2048, args);
    EXPECT_TRUE(rt.cachedSelection("one").has_value());
    EXPECT_FALSE(rt.cachedSelection("two").has_value());
    rt.launchKernel("two", 2048, args);
    // Each signature selected its own cheap variant.
    EXPECT_EQ(*rt.cachedSelection("one"), 0);
    EXPECT_EQ(*rt.cachedSelection("two"), 1);
}
