/**
 * @file
 * Unit tests for the sparse matrix substrate: generators, format
 * conversion, and the reference spmv.
 */
#include <gtest/gtest.h>

#include "workloads/sparse.hh"

using namespace dysel::workloads;

TEST(RandomCsr, StructureIsValid)
{
    const CsrMatrix m = makeRandomCsr(256, 512, 0.02);
    EXPECT_EQ(m.rows, 256u);
    EXPECT_EQ(m.cols, 512u);
    ASSERT_EQ(m.rowPtr.size(), 257u);
    EXPECT_EQ(m.rowPtr[0], 0u);
    EXPECT_EQ(m.rowPtr[256], m.nnz());
    for (std::uint32_t r = 0; r < m.rows; ++r) {
        EXPECT_LE(m.rowPtr[r], m.rowPtr[r + 1]);
        // Sorted, in-range, duplicate-free column indices per row.
        for (std::uint32_t i = m.rowPtr[r]; i < m.rowPtr[r + 1]; ++i) {
            EXPECT_LT(m.colIdx[i], m.cols);
            if (i > m.rowPtr[r])
                EXPECT_LT(m.colIdx[i - 1], m.colIdx[i]);
        }
    }
}

TEST(RandomCsr, DensityIsApproximatelyRespected)
{
    const CsrMatrix m = makeRandomCsr(1024, 1024, 0.01);
    const double actual = static_cast<double>(m.nnz()) / (1024.0 * 1024.0);
    EXPECT_GT(actual, 0.005);
    EXPECT_LT(actual, 0.015);
}

TEST(RandomCsr, DeterministicForSeed)
{
    const CsrMatrix a = makeRandomCsr(64, 64, 0.1, 5);
    const CsrMatrix b = makeRandomCsr(64, 64, 0.1, 5);
    EXPECT_EQ(a.colIdx, b.colIdx);
    EXPECT_EQ(a.vals, b.vals);
}

TEST(DiagonalCsr, OneNonzeroPerRowOnDiagonal)
{
    const CsrMatrix m = makeDiagonalCsr(100);
    EXPECT_EQ(m.nnz(), 100u);
    for (std::uint32_t r = 0; r < 100; ++r) {
        EXPECT_EQ(m.rowLen(r), 1u);
        EXPECT_EQ(m.colIdx[m.rowPtr[r]], r);
    }
}

TEST(Jds, RowsSortedByDescendingLength)
{
    const CsrMatrix csr = makeRandomCsr(200, 300, 0.05);
    const JdsMatrix jds = csrToJds(csr);
    for (std::uint32_t r = 1; r < jds.rows; ++r)
        EXPECT_GE(jds.rowLen[r - 1], jds.rowLen[r]);
    EXPECT_EQ(jds.maxLen, jds.rowLen[0]);
}

TEST(Jds, PermIsAPermutation)
{
    const CsrMatrix csr = makeRandomCsr(128, 128, 0.05);
    const JdsMatrix jds = csrToJds(csr);
    std::vector<bool> seen(csr.rows, false);
    for (std::uint32_t orig : jds.perm) {
        ASSERT_LT(orig, csr.rows);
        EXPECT_FALSE(seen[orig]);
        seen[orig] = true;
    }
}

TEST(Jds, SpmvThroughJdsMatchesCsr)
{
    const CsrMatrix csr = makeRandomCsr(128, 96, 0.08);
    const JdsMatrix jds = csrToJds(csr);
    const auto x = makeDenseVector(csr.cols);
    const auto ref = spmvReference(csr, x);

    // Walk the JDS structure directly.
    std::vector<float> y(csr.rows, 0.0f);
    for (std::uint32_t jr = 0; jr < jds.rows; ++jr) {
        float acc = 0.0f;
        for (std::uint32_t d = 0; d < jds.rowLen[jr]; ++d) {
            const std::uint32_t pos = jds.diagPtr[d] + jr;
            acc += jds.vals[pos] * x[jds.colIdx[pos]];
        }
        y[jds.perm[jr]] = acc;
    }
    for (std::uint32_t r = 0; r < csr.rows; ++r)
        EXPECT_NEAR(y[r], ref[r], 1e-4f);
}

TEST(Jds, DiagRowsMonotonicallyDecrease)
{
    const CsrMatrix csr = makeRandomCsr(64, 64, 0.1);
    const JdsMatrix jds = csrToJds(csr);
    for (std::uint32_t d = 1; d < jds.maxLen; ++d)
        EXPECT_LE(jds.diagRows[d], jds.diagRows[d - 1]);
    EXPECT_EQ(jds.diagPtr[jds.maxLen], jds.vals.size());
}

TEST(SpmvReference, DiagonalActsElementwise)
{
    const CsrMatrix m = makeDiagonalCsr(16);
    std::vector<float> x(16, 2.0f);
    const auto y = spmvReference(m, x);
    for (std::uint32_t r = 0; r < 16; ++r)
        EXPECT_NEAR(y[r], 2.0f * m.vals[r], 1e-6f);
}

TEST(DenseVector, DeterministicAndBounded)
{
    const auto a = makeDenseVector(100, 3);
    const auto b = makeDenseVector(100, 3);
    EXPECT_EQ(a, b);
    for (float v : a) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LT(v, 1.0f);
    }
}
