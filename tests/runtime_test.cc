/**
 * @file
 * Tests for the DySel runtime: registration, the three productive
 * profiling modes (including the Table 1 properties), selection
 * caching, orchestration, and workload-coverage invariants.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dysel/runtime.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/gpu/gpu_device.hh"

using namespace dysel;
using namespace dysel::runtime;

namespace {

constexpr std::uint32_t laneCount = 8;

/**
 * Test kernel: writes `marker` into out[unit] for every covered unit
 * and burns `flops_per_unit` ALU ops, so tests can observe both which
 * variant processed each unit and relative speeds.
 */
kdp::KernelVariant
markerKernel(const char *name, std::int32_t marker,
             std::uint64_t flops_per_unit, std::uint64_t wa_factor = 1)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = wa_factor;
    v.sandboxIndex = {0};
    v.fn = [marker, flops_per_unit](kdp::GroupCtx &g,
                                    const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane =
                static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const char *sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

struct Fixture
{
    sim::CpuDevice device;
    Runtime rt{device};
    kdp::Buffer<std::int32_t> out{4096, kdp::MemSpace::Global, "out"};
    kdp::KernelArgs args;

    Fixture()
    {
        out.fill(-1);
        args.add(out).add(static_cast<std::int64_t>(out.size()));
    }

    /** Count units whose marker is @p marker. */
    std::uint64_t
    countMarker(std::int32_t marker, std::uint64_t units) const
    {
        std::uint64_t n = 0;
        for (std::uint64_t i = 0; i < units; ++i)
            n += out.at(i) == marker;
        return n;
    }
};

} // namespace

TEST(RuntimeRegistration, CountsVariants)
{
    sim::CpuDevice device;
    Runtime rt(device);
    EXPECT_EQ(rt.variantCount("k"), 0u);
    rt.addKernel("k", markerKernel("a", 0, 10));
    rt.addKernel("k", markerKernel("b", 1, 10));
    EXPECT_EQ(rt.variantCount("k"), 2u);
    EXPECT_EQ(rt.variants("k")[1].name, "b");
}

TEST(RuntimeRegistration, DuplicateVariantNameIsRejected)
{
    sim::CpuDevice device;
    Runtime rt(device);
    rt.addKernel("k", markerKernel("a", 0, 10));
    // Registration errors are recoverable caller errors: the fallible
    // API reports InvalidArgument, the legacy wrapper throws.
    const auto st = rt.tryAddKernel("k", markerKernel("a", 1, 10));
    EXPECT_EQ(st.code(), support::StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("duplicate"), std::string::npos);
    EXPECT_THROW(rt.addKernel("k", markerKernel("a", 1, 10)),
                 std::invalid_argument);
    EXPECT_EQ(rt.variantCount("k"), 1u);
}

TEST(RuntimeRegistration, StatusApiReportsCodesWithoutThrowing)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("only", 1, 10));
    f.rt.setKernelInfo("k", regularInfo("k"));

    EXPECT_EQ(f.rt.findVariants("nope"), nullptr);
    ASSERT_NE(f.rt.findVariants("k"), nullptr);
    EXPECT_EQ(f.rt.findVariants("k")->size(), 1u);

    runtime::LaunchReport report;
    EXPECT_EQ(f.rt.launch("nope", 100, f.args, LaunchOptions(), report)
                  .code(),
              support::StatusCode::NotFound);
    EXPECT_EQ(f.rt.launch("k", 0, f.args, LaunchOptions(), report)
                  .code(),
              support::StatusCode::InvalidArgument);
    EXPECT_EQ(f.rt.tryImportSelection("nope", 0).code(),
              support::StatusCode::NotFound);
    EXPECT_EQ(f.rt.tryImportSelection("k", 5).code(),
              support::StatusCode::InvalidArgument);

    const auto ok = f.rt.launch("k", 2048, f.args, LaunchOptions(),
                                report);
    EXPECT_TRUE(ok.ok()) << ok.toString();
    EXPECT_EQ(report.selectedName, "only");
    EXPECT_EQ(f.countMarker(1, 2048), 2048u);
}

TEST(RuntimeRegistration, UnknownSignatureThrows)
{
    Fixture f;
    // Unknown signatures are a recoverable caller error (the dispatch
    // service catches them per job), so they throw instead of
    // fatalling, and the message names the offending signature.
    try {
        f.rt.launchKernel("nope", 100, f.args);
        FAIL() << "launchKernel on an unknown signature did not throw";
    } catch (const std::out_of_range &e) {
        EXPECT_NE(std::string(e.what()).find("nope"),
                  std::string::npos);
    }
    EXPECT_THROW(f.rt.variants("nope"), std::out_of_range);
    EXPECT_THROW(f.rt.importSelection("nope", 0), std::out_of_range);
    EXPECT_FALSE(f.rt.hasKernel("nope"));
}

TEST(RuntimeRegistration, VariantsLookupRoutesThroughStatus)
{
    // variants() is now a wrapper over the typed NotFound Status: the
    // thrown out_of_range must carry the Status message (naming the
    // signature), and the noexcept lookup stays the primary path.
    Fixture f;
    f.rt.addKernel("k", markerKernel("only", 1, 10));
    try {
        f.rt.variants("missing_sig");
        FAIL() << "variants() on an unknown signature did not throw";
    } catch (const std::out_of_range &e) {
        EXPECT_NE(std::string(e.what()).find("missing_sig"),
                  std::string::npos);
    }
    ASSERT_NE(f.rt.findVariants("k"), nullptr);
    EXPECT_EQ(&f.rt.variants("k"), f.rt.findVariants("k"));
}

TEST(RuntimeRegistration, RemoveKernelForgetsPoolAndSelection)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));
    f.rt.launchKernel("k", 2048, f.args);
    ASSERT_TRUE(f.rt.cachedSelection("k").has_value());

    EXPECT_TRUE(f.rt.hasKernel("k"));
    f.rt.removeKernel("k");
    EXPECT_FALSE(f.rt.hasKernel("k"));
    EXPECT_FALSE(f.rt.cachedSelection("k").has_value());
    EXPECT_EQ(f.rt.variantCount("k"), 0u);
    f.rt.removeKernel("k"); // removing a missing pool is a no-op

    // The signature can be re-registered from scratch.
    f.rt.addKernel("k", markerKernel("only", 7, 10));
    EXPECT_EQ(f.rt.variantCount("k"), 1u);
}

TEST(Runtime, ImportedSelectionServesPlainLaunches)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));

    f.rt.importSelection("k", 1);
    LaunchOptions opt;
    opt.profiling = false;
    auto report = f.rt.launchKernel("k", 2048, f.args, opt);
    EXPECT_TRUE(report.fromCache);
    EXPECT_FALSE(report.profiled);
    EXPECT_EQ(report.selectedName, "fast");
    EXPECT_EQ(f.countMarker(2, 2048), 2048u);

    EXPECT_THROW(f.rt.importSelection("k", 5), std::invalid_argument);

    auto exported = f.rt.exportSelections();
    ASSERT_EQ(exported.count("k"), 1u);
    EXPECT_EQ(exported["k"], 1);
}

TEST(Runtime, LaunchObserverSeesEveryLaunch)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));

    std::vector<LaunchReport> seen;
    f.rt.setLaunchObserver(
        [&seen](const LaunchReport &r) { seen.push_back(r); });

    f.rt.launchKernel("k", 2048, f.args);
    LaunchOptions opt;
    opt.profiling = false;
    f.rt.launchKernel("k", 2048, f.args, opt);

    ASSERT_EQ(seen.size(), 2u);
    EXPECT_TRUE(seen[0].profiled);
    EXPECT_FALSE(seen[1].profiled);
    EXPECT_TRUE(seen[1].fromCache);
    EXPECT_EQ(seen[1].selectedName, "fast");

    f.rt.setLaunchObserver(nullptr); // detaching is allowed
    f.rt.launchKernel("k", 2048, f.args, opt);
    EXPECT_EQ(seen.size(), 2u);
}

TEST(Runtime, SingleVariantRunsPlainly)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("only", 7, 10));
    auto report = f.rt.launchKernel("k", 1000, f.args);
    EXPECT_FALSE(report.profiled);
    EXPECT_EQ(report.selected, 0);
    EXPECT_EQ(f.countMarker(7, 1000), 1000u);
}

TEST(Runtime, SelectsTheFasterVariant)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));
    auto report = f.rt.launchKernel("k", 2048, f.args);
    EXPECT_TRUE(report.profiled);
    EXPECT_EQ(report.selectedName, "fast");
    EXPECT_EQ(report.mode, ProfilingMode::Fully);
}

TEST(Runtime, FullyProductiveSlicesContribute)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));
    LaunchOptions opt;
    opt.orch = Orchestration::Sync;
    opt.profileRepeats = 1;
    auto report = f.rt.launchKernel("k", 2048, f.args, opt);

    // No extra space in fully-productive mode (Table 1).
    EXPECT_EQ(report.extraBytes, 0u);
    EXPECT_EQ(report.productiveUnits, report.profiledUnits);
    // Every unit was processed exactly once: the loser's profiling
    // slice keeps its marker; everything else carries the winner's.
    const std::uint64_t slice = report.productiveUnits / 2;
    EXPECT_EQ(f.countMarker(1, 2048), slice);
    EXPECT_EQ(f.countMarker(2, 2048), 2048 - slice);
    EXPECT_EQ(f.countMarker(-1, 2048), 0u);
}

TEST(Runtime, HybridModeSandboxesLosers)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    auto info = regularInfo("k");
    info.loops.push_back(
        {"j", compiler::BoundKind::DataDependent, false, false, 8});
    f.rt.setKernelInfo("k", info);

    LaunchOptions opt;
    opt.orch = Orchestration::Sync;
    opt.profileRepeats = 1;
    auto report = f.rt.launchKernel("k", 2048, f.args, opt);
    EXPECT_EQ(report.mode, ProfilingMode::Hybrid);
    EXPECT_EQ(report.selectedName, "fast");
    // Extra space: at most K-1 copies of the output (Table 1).
    EXPECT_LE(report.extraBytes, 1u * f.out.sizeBytes());
    EXPECT_GT(report.extraBytes, 0u);
    // Only the first variant's profiling writes reach the real
    // output; it covered [0, slice).
    const std::uint64_t slice = report.productiveUnits;
    EXPECT_EQ(f.countMarker(1, 2048), slice);
    EXPECT_EQ(f.countMarker(2, 2048), 2048 - slice);
    EXPECT_EQ(report.profiledUnits, 2 * slice); // both ran the slice
}

TEST(Runtime, SwapModeKeepsOnlyTheWinnersOutput)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    auto info = regularInfo("k");
    info.usesGlobalAtomics = true;
    f.rt.setKernelInfo("k", info);

    auto report = f.rt.launchKernel("k", 2048, f.args);
    EXPECT_EQ(report.mode, ProfilingMode::Swap);
    EXPECT_EQ(report.orch, Orchestration::Sync); // no async for swap
    EXPECT_EQ(report.selectedName, "fast");
    // Extra space: at most K copies (Table 1).
    EXPECT_LE(report.extraBytes, 2u * f.out.sizeBytes());
    // The winner's private output was swapped in: every unit carries
    // the winner's marker, including the profiled slice.
    EXPECT_EQ(f.countMarker(2, 2048), 2048u);
}

TEST(Runtime, ExplicitModeOverridesAnalysis)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k")); // would be Fully
    LaunchOptions opt;
    opt.mode = ProfilingMode::Swap;
    opt.modeExplicit = true;
    auto report = f.rt.launchKernel("k", 2048, f.args, opt);
    EXPECT_EQ(report.mode, ProfilingMode::Swap);
    EXPECT_EQ(f.countMarker(2, 2048), 2048u);
}

TEST(Runtime, SmallWorkloadDeactivatesProfiling)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));
    auto report = f.rt.launchKernel("k", 64, f.args);
    EXPECT_FALSE(report.profiled);
    EXPECT_EQ(report.selected, 0); // default variant
    EXPECT_EQ(f.countMarker(1, 64), 64u);
}

TEST(Runtime, SelectionCacheServesIterativeLaunches)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));

    // First iteration: profiling on.
    auto first = f.rt.launchKernel("k", 2048, f.args);
    EXPECT_TRUE(first.profiled);
    ASSERT_TRUE(f.rt.cachedSelection("k").has_value());
    EXPECT_EQ(*f.rt.cachedSelection("k"), first.selected);

    // Later iterations: profiling off, cached winner reused.
    LaunchOptions opt;
    opt.profiling = false;
    auto later = f.rt.launchKernel("k", 2048, f.args, opt);
    EXPECT_FALSE(later.profiled);
    EXPECT_TRUE(later.fromCache);
    EXPECT_EQ(later.selectedName, "fast");

    f.rt.clearSelectionCache();
    EXPECT_FALSE(f.rt.cachedSelection("k").has_value());
}

TEST(Runtime, ProfilingOffWithoutCacheUsesDefault)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("a", 1, 100));
    f.rt.addKernel("k", markerKernel("b", 2, 100));
    LaunchOptions opt;
    opt.profiling = false;
    opt.initialVariant = 1;
    auto report = f.rt.launchKernel("k", 1024, f.args, opt);
    EXPECT_FALSE(report.fromCache);
    EXPECT_EQ(report.selectedName, "b");
    EXPECT_EQ(f.countMarker(2, 1024), 1024u);
}

TEST(Runtime, AsyncDispatchesEagerChunks)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 40000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));
    LaunchOptions opt;
    opt.orch = Orchestration::Async;
    opt.initialVariant = 1; // eager work runs with "fast"
    opt.eagerChunkUnits = 128;
    auto report = f.rt.launchKernel("k", 2048, f.args, opt);
    EXPECT_GE(report.eagerChunks, 1u);
    EXPECT_EQ(f.countMarker(-1, 2048), 0u); // full coverage
}

TEST(Runtime, AsyncMatchesSyncOutputs)
{
    for (auto orch : {Orchestration::Sync, Orchestration::Async}) {
        Fixture f;
        f.rt.addKernel("k", markerKernel("slow", 1, 4000));
        f.rt.addKernel("k", markerKernel("fast", 2, 100));
        f.rt.setKernelInfo("k", regularInfo("k"));
        LaunchOptions opt;
        opt.orch = orch;
        auto report = f.rt.launchKernel("k", 2048, f.args, opt);
        EXPECT_EQ(report.selectedName, "fast");
        EXPECT_EQ(f.countMarker(-1, 2048), 0u);
    }
}

TEST(Runtime, MixedWorkAssignmentFactorsAlignSlices)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("fine", 1, 4000, 1));
    f.rt.addKernel("k", markerKernel("coarse", 2, 100, 16));
    f.rt.setKernelInfo("k", regularInfo("k"));
    auto report = f.rt.launchKernel("k", 2048, f.args);
    EXPECT_EQ(report.selectedName, "coarse");
    EXPECT_EQ(f.countMarker(-1, 2048), 0u);
    // Both variants profiled the same number of units (safe point).
    ASSERT_EQ(report.profiles.size(), 2u);
    EXPECT_EQ(report.profiles[0].units, report.profiles[1].units);
}

TEST(Runtime, ReportsPerVariantProfiles)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("slow", 1, 4000));
    f.rt.addKernel("k", markerKernel("fast", 2, 100));
    f.rt.setKernelInfo("k", regularInfo("k"));
    auto report = f.rt.launchKernel("k", 2048, f.args);
    ASSERT_EQ(report.profiles.size(), 2u);
    EXPECT_EQ(report.profiles[0].name, "slow");
    EXPECT_EQ(report.profiles[1].name, "fast");
    EXPECT_GT(report.profiles[0].metric, report.profiles[1].metric);
    EXPECT_GT(report.endTime, report.startTime);
}

TEST(Runtime, GpuPathSelectsCorrectlyToo)
{
    sim::GpuDevice device;
    Runtime rt(device);
    kdp::Buffer<std::int32_t> out(8192, kdp::MemSpace::Global, "out");
    out.fill(-1);
    kdp::KernelArgs args;
    args.add(out).add(static_cast<std::int64_t>(out.size()));

    rt.addKernel("k", markerKernel("slow", 1, 4000));
    rt.addKernel("k", markerKernel("fast", 2, 100));
    rt.setKernelInfo("k", regularInfo("k"));
    auto report = rt.launchKernel("k", 8192, args);
    EXPECT_EQ(report.selectedName, "fast");
    for (std::uint64_t i = 0; i < 8192; ++i)
        EXPECT_NE(out.at(i), -1);
}

TEST(Runtime, InitialVariantOutOfRangeIsInvalidArgument)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("a", 1, 100));
    LaunchOptions opt;
    opt.initialVariant = 5;
    runtime::LaunchReport report;
    EXPECT_EQ(f.rt.launch("k", 1024, f.args, opt, report).code(),
              support::StatusCode::InvalidArgument);
    EXPECT_THROW(f.rt.launchKernel("k", 1024, f.args, opt),
                 std::invalid_argument);
}

TEST(Runtime, EmptyWorkloadIsInvalidArgument)
{
    Fixture f;
    f.rt.addKernel("k", markerKernel("a", 1, 100));
    EXPECT_THROW(f.rt.launchKernel("k", 0, f.args),
                 std::invalid_argument);
}
