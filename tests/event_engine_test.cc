/**
 * @file
 * Unit tests for the discrete-event engine: time ordering, FIFO
 * tie-breaking, reentrancy from callbacks.
 */
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_engine.hh"

using namespace dysel::sim;

TEST(EventEngine, StartsAtZeroAndIdle)
{
    EventEngine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_TRUE(e.idle());
}

TEST(EventEngine, FiresInTimeOrder)
{
    EventEngine e;
    std::vector<int> order;
    e.schedule(30, [&] { order.push_back(3); });
    e.schedule(10, [&] { order.push_back(1); });
    e.schedule(20, [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(EventEngine, EqualTimesFireInInsertionOrder)
{
    EventEngine e;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        e.schedule(5, [&order, i] { order.push_back(i); });
    e.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventEngine, CallbacksMayScheduleMore)
{
    EventEngine e;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            e.scheduleAfter(10, chain);
    };
    e.schedule(0, chain);
    e.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(e.now(), 40u);
}

TEST(EventEngine, PastTimesClampToNow)
{
    EventEngine e;
    TimeNs seen = 12345;
    e.schedule(100, [&] {
        e.schedule(50, [&] { seen = e.now(); }); // in the past
    });
    e.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventEngine, CountsFiredEvents)
{
    EventEngine e;
    for (int i = 0; i < 7; ++i)
        e.schedule(i, [] {});
    e.run();
    EXPECT_EQ(e.eventsFired(), 7u);
}

TEST(EventEngine, ScheduleAfterIsRelative)
{
    EventEngine e;
    TimeNs when = 0;
    e.schedule(40, [&] {
        e.scheduleAfter(2, [&] { when = e.now(); });
    });
    e.run();
    EXPECT_EQ(when, 42u);
}
