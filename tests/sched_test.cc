/**
 * @file
 * Unit tests for the launch bookkeeping shared by the devices:
 * ActiveLaunch progress tracking and the priority/stream-aware
 * DispatchQueue (round-robin among equal-priority streams, CUDA
 * in-stream ordering).
 */
#include <gtest/gtest.h>

#include "sim/sched.hh"

using namespace dysel::sim;

namespace {

LaunchPtr
makeLaunch(int stream, int priority, std::uint64_t groups)
{
    auto al = std::make_shared<ActiveLaunch>();
    al->launch.stream = stream;
    al->launch.priority = priority;
    al->launch.numGroups = groups;
    al->launch.firstGroup = 100; // arbitrary grid offset
    return al;
}

} // namespace

TEST(ActiveLaunch, ProgressTracking)
{
    auto al = makeLaunch(0, 0, 3);
    EXPECT_FALSE(al->allIssued());
    EXPECT_FALSE(al->finished());
    al->nextGroup = 3;
    EXPECT_TRUE(al->allIssued());
    EXPECT_FALSE(al->finished());
    al->done = 3;
    EXPECT_TRUE(al->finished());
    EXPECT_EQ(al->gridId(2), 102u);
}

TEST(DispatchQueue, EmptyQueuePicksNothing)
{
    DispatchQueue q;
    EXPECT_EQ(q.pick(), nullptr);
    EXPECT_TRUE(q.drained());
}

TEST(DispatchQueue, HigherPriorityWins)
{
    DispatchQueue q;
    auto low = makeLaunch(1, 0, 4);
    auto high = makeLaunch(2, 5, 4);
    q.add(low);
    q.add(high);
    EXPECT_EQ(q.pick(), high);
}

TEST(DispatchQueue, EqualPriorityRoundRobinsAcrossStreams)
{
    DispatchQueue q;
    auto a = makeLaunch(1, 0, 8);
    auto b = makeLaunch(2, 0, 8);
    q.add(a);
    q.add(b);
    // Consecutive picks alternate between the two streams (block
    // interleaving of concurrent CUDA streams).
    LaunchPtr first = q.pick();
    first->nextGroup++;
    LaunchPtr second = q.pick();
    second->nextGroup++;
    EXPECT_NE(first, second);
    LaunchPtr third = q.pick();
    third->nextGroup++;
    EXPECT_EQ(third, first);
}

TEST(DispatchQueue, SameStreamSerializes)
{
    DispatchQueue q;
    auto first = makeLaunch(3, 0, 2);
    auto second = makeLaunch(3, 0, 2);
    q.add(first);
    q.add(second);
    // Only the stream head is dispatchable.
    EXPECT_EQ(q.pick(), first);
    first->nextGroup = 2; // all issued but not finished
    EXPECT_EQ(q.pick(), nullptr);
    first->done = 2; // finished: the head retires
    EXPECT_EQ(q.pick(), second);
}

TEST(DispatchQueue, FullyIssuedLaunchIsNotPicked)
{
    DispatchQueue q;
    auto al = makeLaunch(1, 0, 1);
    q.add(al);
    EXPECT_EQ(q.pick(), al);
    al->nextGroup = 1;
    EXPECT_EQ(q.pick(), nullptr);
}

TEST(DispatchQueue, DrainedReflectsOutstandingWork)
{
    DispatchQueue q;
    auto al = makeLaunch(1, 0, 2);
    q.add(al);
    EXPECT_FALSE(q.drained());
    al->nextGroup = 2;
    EXPECT_TRUE(q.drained());
}

TEST(DispatchQueue, PriorityBeatsRoundRobinFairness)
{
    DispatchQueue q;
    auto low_a = makeLaunch(1, 0, 8);
    auto low_b = makeLaunch(2, 0, 8);
    auto high = makeLaunch(3, 1, 2);
    q.add(low_a);
    q.add(low_b);
    q.add(high);
    // The priority launch is picked until exhausted.
    EXPECT_EQ(q.pick(), high);
    high->nextGroup++;
    EXPECT_EQ(q.pick(), high);
    high->nextGroup++;
    LaunchPtr next = q.pick();
    EXPECT_TRUE(next == low_a || next == low_b);
}
