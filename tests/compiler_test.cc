/**
 * @file
 * Unit tests for the compiler analyses (§3.4) and the schedule
 * enumeration of the kernel version generator.
 */
#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "compiler/kernel_info.hh"
#include "compiler/schedule.hh"

using namespace dysel::compiler;

// ---- Safe point analysis -------------------------------------------

TEST(SafePoint, NormalizesToLcm)
{
    // Paper's Fig. 3 example: work assignment 3:2 -> launch 2 and 3
    // groups (one compute unit, no scaling needed beyond lcm).
    auto plan = safePointAnalysis({3, 2}, 1, 1000);
    EXPECT_EQ(plan.lcm, 6u);
    EXPECT_EQ(plan.scale, 1u);
    EXPECT_EQ(plan.groups[0], 2u);
    EXPECT_EQ(plan.groups[1], 3u);
}

TEST(SafePoint, ScalesToFillComputeUnits)
{
    // The largest-factor variant must still launch >= CUs groups.
    auto plan = safePointAnalysis({1, 16}, 8, 100000);
    EXPECT_EQ(plan.lcm, 16u);
    EXPECT_EQ(plan.scale, 8u);
    EXPECT_EQ(plan.unitsPerVariant, 128u);
    EXPECT_EQ(plan.groups[0], 128u);
    EXPECT_EQ(plan.groups[1], 8u);
}

TEST(SafePoint, EqualUnitsPerVariant)
{
    auto plan = safePointAnalysis({1, 4, 8}, 4, 100000);
    for (std::size_t i = 0; i < plan.groups.size(); ++i) {
        const std::uint64_t factors[] = {1, 4, 8};
        EXPECT_EQ(plan.groups[i] * factors[i], plan.unitsPerVariant);
    }
}

TEST(SafePoint, CapsProfilingVolume)
{
    // 2 variants x 64 units each would be 128 > 50% of 200: the
    // scale backs off.
    auto plan = safePointAnalysis({1, 64}, 8, 200, 0.5);
    EXPECT_LE(plan.unitsPerVariant * 2, 100u);
    EXPECT_GE(plan.scale, 1u);
}

TEST(SafePoint, DeactivatesWhenEvenOneSliceDoesNotFit)
{
    auto plan = safePointAnalysis({1, 64}, 8, 100, 0.5);
    EXPECT_EQ(plan.unitsPerVariant, 0u);
    EXPECT_EQ(plan.groups[0], 0u);
}

TEST(SafePoint, SingleVariantStillPlans)
{
    auto plan = safePointAnalysis({4}, 13, 100000);
    EXPECT_EQ(plan.lcm, 4u);
    EXPECT_EQ(plan.groups[0], 13u);
    EXPECT_EQ(plan.unitsPerVariant, 52u);
}

/** Property sweep: invariants over many factor combinations. */
class SafePointSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SafePointSweep, Invariants)
{
    const auto [f0, f1, cus] = GetParam();
    const std::vector<std::uint64_t> factors = {
        static_cast<std::uint64_t>(f0), static_cast<std::uint64_t>(f1)};
    auto plan = safePointAnalysis(factors, cus, 1 << 20);
    // LCM divisible by every factor.
    EXPECT_EQ(plan.lcm % factors[0], 0u);
    EXPECT_EQ(plan.lcm % factors[1], 0u);
    // Units per variant is lcm * scale and every variant profiles
    // exactly that many units.
    EXPECT_EQ(plan.unitsPerVariant, plan.lcm * plan.scale);
    EXPECT_EQ(plan.groups[0] * factors[0], plan.unitsPerVariant);
    EXPECT_EQ(plan.groups[1] * factors[1], plan.unitsPerVariant);
    // The fewest-group variant still fills the device.
    EXPECT_GE(std::min(plan.groups[0], plan.groups[1]),
              static_cast<std::uint64_t>(cus));
}

INSTANTIATE_TEST_SUITE_P(
    Factors, SafePointSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 3, 16, 64, 128),
                       ::testing::Values(1, 8, 13)));

// ---- Uniform workload / side effect analyses -----------------------

namespace {

KernelInfo
regularInfo()
{
    KernelInfo info;
    info.signature = "regular";
    info.loops = {{"wi", BoundKind::Constant, true, false, 64},
                  {"k", BoundKind::Param, false, false, 100}};
    return info;
}

} // namespace

TEST(UniformWorkload, RegularKernelIsUniform)
{
    EXPECT_TRUE(uniformWorkloadAnalysis(regularInfo()));
}

TEST(UniformWorkload, DataDependentBoundIsIrregular)
{
    KernelInfo info = regularInfo();
    info.loops[1].bound = BoundKind::DataDependent;
    EXPECT_FALSE(uniformWorkloadAnalysis(info));
}

TEST(UniformWorkload, EarlyExitIsIrregular)
{
    KernelInfo info = regularInfo();
    info.loops[1].hasEarlyExit = true;
    EXPECT_FALSE(uniformWorkloadAnalysis(info));
}

TEST(SideEffect, AtomicsFlagOverlap)
{
    KernelInfo info = regularInfo();
    EXPECT_FALSE(sideEffectAnalysis(info));
    info.usesGlobalAtomics = true;
    EXPECT_TRUE(sideEffectAnalysis(info));
}

TEST(ModeRecommendation, FollowsThePaperDecisionTree)
{
    KernelInfo info = regularInfo();
    EXPECT_EQ(recommendProfilingMode(info), ProfilingMode::Fully);

    info.loops[1].bound = BoundKind::DataDependent;
    EXPECT_EQ(recommendProfilingMode(info), ProfilingMode::Hybrid);

    // Atomics dominate: swap even when also irregular.
    info.usesGlobalAtomics = true;
    EXPECT_EQ(recommendProfilingMode(info), ProfilingMode::Swap);
}

TEST(ModeNames, Distinct)
{
    EXPECT_STREQ(profilingModeName(ProfilingMode::Fully),
                 "fully-productive");
    EXPECT_STREQ(profilingModeName(ProfilingMode::Hybrid),
                 "hybrid-partial");
    EXPECT_STREQ(profilingModeName(ProfilingMode::Swap), "swap-partial");
}

// ---- Schedules ------------------------------------------------------

TEST(Schedules, EnumeratesAllPermutations)
{
    EXPECT_EQ(allSchedules(1).size(), 1u);
    EXPECT_EQ(allSchedules(2).size(), 2u);
    EXPECT_EQ(allSchedules(3).size(), 6u);
    EXPECT_EQ(allSchedules(5).size(), 120u);
}

TEST(Schedules, PaperCutcpCountWithConstraint)
{
    // 5 loops with "atom after bin" = 120 / 2 = 60 schedules, the
    // paper's cutcp count.
    unsigned count = 0;
    for (const auto &sched : allSchedules(5)) {
        unsigned pos3 = 0, pos4 = 0;
        for (unsigned i = 0; i < 5; ++i) {
            if (sched.order[i] == 3)
                pos3 = i;
            if (sched.order[i] == 4)
                pos4 = i;
        }
        count += pos4 > pos3;
    }
    EXPECT_EQ(count, 60u);
}

TEST(Schedules, EachPermutationIsValid)
{
    for (const auto &sched : allSchedules(4)) {
        std::vector<bool> seen(4, false);
        for (unsigned idx : sched.order) {
            ASSERT_LT(idx, 4u);
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
}

TEST(Schedules, DfoIsCanonicalOrder)
{
    const Schedule dfo = dfoSchedule(3);
    EXPECT_EQ(dfo.order, (std::vector<unsigned>{0, 1, 2}));
    EXPECT_EQ(dfo.name(), "L0.L1.L2");
}

TEST(Schedules, BfoPutsWorkItemLoopsInnermost)
{
    KernelInfo info;
    info.loops = {{"wi", BoundKind::Constant, true, false, 64},
                  {"k", BoundKind::Param, false, false, 10}};
    const Schedule bfo = bfoSchedule(info);
    EXPECT_EQ(bfo.order, (std::vector<unsigned>{1, 0}));
}

TEST(KernelInfo, IrregularLoopDetection)
{
    KernelInfo info = regularInfo();
    EXPECT_FALSE(info.hasIrregularLoops());
    info.loops.push_back({"j", BoundKind::DataDependent, false, false, 5});
    EXPECT_TRUE(info.hasIrregularLoops());
}
