/**
 * @file
 * Tests for the persistent selection store: size-bucket boundaries,
 * JSON round-trip, drift detection with quarantine / invalidation
 * escalation, failure reporting, the hit/miss statistics, the
 * variant blacklist, and crash-safe persistence (checksum envelope,
 * corruption rejection, version migration).
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <gtest/gtest.h>

#include "dysel/store/selection_store.hh"

using namespace dysel;
using namespace dysel::store;

namespace {

constexpr const char *kDev = "cpu/test-device/c8@3.60GHz";

/** A synthetic profiled launch report with two variants. */
runtime::LaunchReport
profiledReport(const std::string &sig, std::uint64_t units,
               int selected = 1)
{
    runtime::LaunchReport r;
    r.signature = sig;
    r.profiled = true;
    r.totalUnits = units;
    r.profiledUnits = 256;
    r.selected = selected;
    r.profiles.resize(2);
    r.profiles[0] = {"slow", 4000, 4200, 3900, 128};
    r.profiles[1] = {"fast", 1000, 1100, 950, 128};
    r.selectedName = r.profiles[static_cast<std::size_t>(selected)].name;
    return r;
}

/** A plain (cache-served) launch taking @p unit_ns per unit. */
runtime::LaunchReport
plainReport(const std::string &sig, std::uint64_t units, double unit_ns)
{
    runtime::LaunchReport r;
    r.signature = sig;
    r.profiled = false;
    r.fromCache = true;
    r.totalUnits = units;
    r.startTime = 0;
    r.endTime = static_cast<sim::TimeNs>(unit_ns
                                         * static_cast<double>(units));
    return r;
}

} // namespace

TEST(Bucket, Boundaries)
{
    EXPECT_EQ(bucketOf(0), 0u);
    EXPECT_EQ(bucketOf(1), 0u);
    EXPECT_EQ(bucketOf(2), 1u);
    EXPECT_EQ(bucketOf(3), 1u);
    EXPECT_EQ(bucketOf(4), 2u);
    EXPECT_EQ(bucketOf(1023), 9u);
    EXPECT_EQ(bucketOf(1024), 10u);
    EXPECT_EQ(bucketOf(2047), 10u);
    EXPECT_EQ(bucketOf(2048), 11u);
}

TEST(Bucket, RangeRoundTrips)
{
    for (unsigned b = 1; b < 40; ++b) {
        const auto [lo, hi] = bucketRange(b);
        EXPECT_EQ(bucketOf(lo), b);
        EXPECT_EQ(bucketOf(hi), b);
        EXPECT_EQ(bucketOf(hi + 1), b + 1);
    }
}

TEST(SelectionStore, LookupMissesThenHitsAfterProfile)
{
    SelectionStore store;
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    EXPECT_EQ(store.misses(), 1u);

    store.recordProfile(kDev, profiledReport("k", 2048));
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selected, 1);
    EXPECT_EQ(rec->selectedName, "fast");
    EXPECT_EQ(rec->bucket, 11u);
    ASSERT_EQ(rec->profiles.size(), 2u);
    EXPECT_EQ(rec->profiles[0].name, "slow");
    EXPECT_EQ(store.hits(), 1u);

    // Same signature, different size bucket: still a miss.
    EXPECT_FALSE(store.lookup("k", kDev, 8192).has_value());
    // Same bucket, different device: still a miss.
    EXPECT_FALSE(store.lookup("k", "gpu/other", 2048).has_value());
}

TEST(SelectionStore, SameBucketDifferentUnitsHits)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    // 2048..4095 share bucket 11.
    EXPECT_TRUE(store.lookup("k", kDev, 4095).has_value());
    EXPECT_FALSE(store.lookup("k", kDev, 4096).has_value());
}

TEST(SelectionStore, UnprofiledReportsAreIgnored)
{
    SelectionStore store;
    store.recordProfile(kDev, plainReport("k", 2048, 10.0));
    EXPECT_EQ(store.size(), 0u);
}

TEST(SelectionStore, DriftQuarantinesThenServesRunnerUp)
{
    StoreConfig cfg;
    cfg.driftFactor = 1.5;
    SelectionStore store(cfg);
    store.recordProfile(kDev, profiledReport("k", 2048));

    // First plain run seeds the baseline; consistent runs confirm it.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.5)),
              Observation::Ok);
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->confidence, 2u);
    EXPECT_GT(rec->unitTimeNs, 0.0);

    // A 3x slowdown exceeds the 1.5x drift factor.  A record with a
    // profiled runner-up is quarantined, not dropped: it keeps
    // serving, with the next-best variant.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Quarantined);
    EXPECT_EQ(store.quarantineCount(), 1u);
    EXPECT_EQ(store.driftInvalidations(), 0u);
    rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "slow");
    EXPECT_EQ(rec->quarantinedVariant, 1);
    EXPECT_EQ(rec->cooldownLeft, cfg.quarantineCooldown);

    // The fallback drifting too exhausts the record: invalidated.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 40.0)),
              Observation::Ok); // seeds the fallback's baseline
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Invalidated);
    EXPECT_EQ(store.driftInvalidations(), 1u);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());

    // Re-profiling revalidates the record and lifts the quarantine.
    store.recordProfile(kDev, profiledReport("k", 2048, 0));
    rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->valid);
    EXPECT_EQ(rec->selectedName, "slow");
    EXPECT_EQ(rec->quarantinedVariant, -1);
    EXPECT_EQ(rec->profiledLaunches, 2u);
}

TEST(SelectionStore, QuarantineCooldownForcesReprofile)
{
    StoreConfig cfg;
    cfg.quarantineCooldown = 3;
    SelectionStore store(cfg);
    store.recordProfile(kDev, profiledReport("k", 2048));
    store.observePlain(kDev, plainReport("k", 2048, 10.0));
    ASSERT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Quarantined);

    // Three well-behaved fallback runs spend the cooldown; the last
    // one invalidates the record so the next launch re-profiles and
    // the quarantined variant gets to compete again.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 20.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 20.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 20.0)),
              Observation::Invalidated);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
}

TEST(SelectionStore, ReportFailureQuarantinesThenInvalidates)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));

    // A launch failure on the stored winner demotes it immediately.
    EXPECT_EQ(store.reportFailure("k", kDev, 2048),
              Observation::Quarantined);
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "slow");

    // The fallback failing too gives up on the record entirely.
    EXPECT_EQ(store.reportFailure("k", kDev, 2048),
              Observation::Invalidated);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    // Unknown keys are ignored.
    EXPECT_EQ(store.reportFailure("other", kDev, 2048),
              Observation::Ok);
}

TEST(SelectionStore, SingleVariantRecordInvalidatesOnDrift)
{
    SelectionStore store;
    runtime::LaunchReport r = profiledReport("k", 2048, 0);
    r.profiles.resize(1); // no runner-up to fall back on
    store.recordProfile(kDev, r);
    store.observePlain(kDev, plainReport("k", 2048, 10.0));
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Invalidated);
    EXPECT_EQ(store.quarantineCount(), 0u);
    EXPECT_EQ(store.driftInvalidations(), 1u);
}

TEST(SelectionStore, SpeedupDriftAlsoQuarantines)
{
    SelectionStore store; // default driftFactor 1.5
    store.recordProfile(kDev, profiledReport("k", 2048));
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Ok);
    // Getting much *faster* also means the stored ranking is stale.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Quarantined);
}

TEST(SelectionStore, ObservationsOfUnknownKeysAreIgnored)
{
    SelectionStore store;
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Ok);
    EXPECT_EQ(store.size(), 0u);
}

TEST(SelectionStore, JsonRoundTripPreservesEverything)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("a", 2048));
    store.recordProfile(kDev, profiledReport("b", 300, 0));
    store.recordProfile("gpu/dev2", profiledReport("a", 2048));
    store.observePlain(kDev, plainReport("a", 2048, 12.5));
    store.invalidate("b", kDev, bucketOf(300));
    // A quarantined record must survive the round trip mid-cooldown.
    store.recordProfile(kDev, profiledReport("c", 512));
    store.reportFailure("c", kDev, 512);

    SelectionStore loaded;
    loaded.loadJson(store.toJson());

    const auto before = store.records();
    const auto after = loaded.records();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].signature, after[i].signature);
        EXPECT_EQ(before[i].device, after[i].device);
        EXPECT_EQ(before[i].bucket, after[i].bucket);
        EXPECT_EQ(before[i].selected, after[i].selected);
        EXPECT_EQ(before[i].selectedName, after[i].selectedName);
        EXPECT_EQ(before[i].launches, after[i].launches);
        EXPECT_EQ(before[i].profiledLaunches, after[i].profiledLaunches);
        EXPECT_EQ(before[i].confidence, after[i].confidence);
        EXPECT_DOUBLE_EQ(before[i].unitTimeNs, after[i].unitTimeNs);
        EXPECT_EQ(before[i].valid, after[i].valid);
        EXPECT_EQ(before[i].quarantinedVariant,
                  after[i].quarantinedVariant);
        EXPECT_EQ(before[i].cooldownLeft, after[i].cooldownLeft);
        EXPECT_EQ(before[i].quarantines, after[i].quarantines);
        ASSERT_EQ(before[i].profiles.size(), after[i].profiles.size());
        for (std::size_t j = 0; j < before[i].profiles.size(); ++j) {
            EXPECT_EQ(before[i].profiles[j].name,
                      after[i].profiles[j].name);
            EXPECT_DOUBLE_EQ(before[i].profiles[j].metricNs,
                             after[i].profiles[j].metricNs);
            EXPECT_EQ(before[i].profiles[j].units,
                      after[i].profiles[j].units);
        }
    }
    // Identical selections serve identically after the round trip.
    auto rec = loaded.lookup("a", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "fast");
    EXPECT_FALSE(loaded.lookup("b", kDev, 300).has_value()); // invalid
    auto quarantined = loaded.lookup("c", kDev, 512);
    ASSERT_TRUE(quarantined.has_value());
    EXPECT_EQ(quarantined->selectedName, "slow");
    EXPECT_EQ(quarantined->quarantinedVariant, 1);
}

TEST(SelectionStore, LoadsVersionOneDocuments)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    // A pre-quarantine (version 1) document is the same format minus
    // the quarantine fields; it must load with quarantine at rest.
    support::Json doc = store.toJson();
    doc.set("version", support::Json(1));
    SelectionStore loaded;
    loaded.loadJson(doc);
    auto rec = loaded.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->quarantinedVariant, -1);
    EXPECT_EQ(rec->cooldownLeft, 0u);
}

TEST(SelectionStore, FileRoundTrip)
{
    // Written relative to the test's working directory, i.e. under
    // build/ when run through ctest; *.store.json is gitignored.
    const std::string path = "store_test.tmp.store.json";
    {
        SelectionStore store;
        store.recordProfile(kDev, profiledReport("k", 2048));
        ASSERT_TRUE(store.saveFile(path).ok());
    }
    SelectionStore loaded;
    ASSERT_TRUE(loaded.loadFile(path).ok());
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.lookup("k", kDev, 2048).has_value());
    std::remove(path.c_str());
}

TEST(SelectionStore, LoadRejectsGarbage)
{
    SelectionStore store;
    EXPECT_EQ(store.loadFile("/nonexistent/path/store.json").code(),
              support::StatusCode::NotFound);
    EXPECT_THROW(store.loadJson(support::Json::parse("{\"version\":99}")),
                 std::runtime_error);
}

TEST(SelectionStore, SaveToUnwritablePathFails)
{
    SelectionStore store;
    const auto st = store.saveFile("/nonexistent/dir/store.json");
    EXPECT_EQ(st.code(), support::StatusCode::Unavailable);
}

namespace {

/** Read a whole file into a string. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Overwrite a file with @p text. */
void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
}

/** A store with one record and one blacklist entry, saved to @p path. */
void
savePopulated(const std::string &path)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    store.blacklistVariant("k", "oob-writer", kDev, "redzone");
    ASSERT_TRUE(store.saveFile(path).ok());
}

} // namespace

TEST(SelectionStore, TruncatedFileRejectedWithoutPartialLoad)
{
    const std::string path = "store_test.truncated.store.json";
    savePopulated(path);
    const std::string text = slurp(path);
    ASSERT_GT(text.size(), 40u);
    spit(path, text.substr(0, text.size() / 2));

    SelectionStore loaded;
    loaded.recordProfile(kDev, profiledReport("existing", 512));
    const auto st = loaded.loadFile(path);
    EXPECT_EQ(st.code(), support::StatusCode::DataLoss);
    // The failed load must leave the previous contents untouched.
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.lookup("existing", kDev, 512).has_value());
    std::remove(path.c_str());
}

TEST(SelectionStore, ChecksumMismatchRejected)
{
    const std::string path = "store_test.badsum.store.json";
    savePopulated(path);
    // Corrupt the payload while keeping the JSON well-formed: the
    // stored winner's name changes, the checksum does not.
    std::string text = slurp(path);
    const auto pos = text.find("\"fast\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 6, "\"fist\"");
    spit(path, text);

    SelectionStore loaded;
    const auto st = loaded.loadFile(path);
    EXPECT_EQ(st.code(), support::StatusCode::DataLoss);
    EXPECT_NE(st.message().find("checksum"), std::string::npos);
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(SelectionStore, LegacyNakedDocumentStillLoads)
{
    // Pre-checksum saveFile wrote the version-2 document naked (no
    // envelope); such files must keep loading after an upgrade.
    const std::string path = "store_test.legacy.store.json";
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    support::Json doc = store.toJson();
    doc.set("version", support::Json(2));
    // v2 had no blacklist array either.
    spit(path, doc.dump(2) + "\n");

    SelectionStore loaded;
    ASSERT_TRUE(loaded.loadFile(path).ok());
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.blacklistSize(), 0u);
    std::remove(path.c_str());
}

TEST(SelectionStore, MigrationRoundTripsAcrossVersions)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    store.blacklistVariant("k", "bad", kDev, "nan");

    // v1 and v2: quarantine / blacklist state at rest.
    for (int v = 1; v <= 2; ++v) {
        support::Json doc = store.toJson();
        doc.set("version", support::Json(v));
        SelectionStore loaded;
        loaded.loadJson(doc);
        EXPECT_EQ(loaded.size(), 1u);
        // The v3 save carried the blacklist array, so even a
        // down-versioned document keeps it; a true v1/v2 document
        // simply has none.
        auto rec = loaded.lookup("k", kDev, 2048);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->selectedName, "fast");
    }

    // v3: the full round trip, blacklist included.
    SelectionStore loaded;
    loaded.loadJson(store.toJson());
    EXPECT_TRUE(loaded.isBlacklisted("k", "bad", kDev));
    EXPECT_FALSE(loaded.isBlacklisted("k", "bad", "gpu/other"));
    ASSERT_EQ(loaded.blacklistEntries().size(), 1u);
    EXPECT_EQ(loaded.blacklistEntries()[0].reason, "nan");
    EXPECT_EQ(loaded.blacklistEntries()[0].strikes, 1u);
}

TEST(SelectionStore, BlacklistInvalidatesMatchingRecords)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));     // fast
    store.recordProfile(kDev, profiledReport("k", 300));      // fast
    store.recordProfile(kDev, profiledReport("other", 2048, 0)); // slow
    ASSERT_TRUE(store.lookup("k", kDev, 2048).has_value());

    // Blacklisting the winner kills its records in every bucket of
    // the (signature, device), but not other signatures.
    store.blacklistVariant("k", "fast", kDev, "mismatch");
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    EXPECT_FALSE(store.lookup("k", kDev, 300).has_value());
    EXPECT_TRUE(store.lookup("other", kDev, 2048).has_value());

    EXPECT_TRUE(store.isBlacklisted("k", "fast", kDev));
    const auto bl = store.blacklistedVariants("k", kDev);
    ASSERT_EQ(bl.size(), 1u);
    EXPECT_EQ(bl[0].first, "fast");
    EXPECT_EQ(bl[0].second, "mismatch");

    // Repeat reports bump the strike count, not the entry count.
    store.blacklistVariant("k", "fast", kDev, "redzone");
    EXPECT_EQ(store.blacklistSize(), 1u);
    EXPECT_EQ(store.blacklistEntries()[0].strikes, 2u);
    EXPECT_EQ(store.blacklistEntries()[0].reason, "redzone");
}

TEST(SelectionStore, BlacklistSurvivesFileRoundTrip)
{
    const std::string path = "store_test.blacklist.store.json";
    savePopulated(path);

    SelectionStore loaded;
    ASSERT_TRUE(loaded.loadFile(path).ok());
    EXPECT_TRUE(loaded.isBlacklisted("k", "oob-writer", kDev));
    EXPECT_EQ(loaded.blacklistSize(), 1u);
    std::remove(path.c_str());
}
