/**
 * @file
 * Tests for the persistent selection store: size-bucket boundaries,
 * JSON round-trip, drift detection with quarantine / invalidation
 * escalation, failure reporting, the hit/miss statistics, the
 * variant blacklist, and crash-safe persistence (checksum envelope,
 * corruption rejection, version migration).
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <gtest/gtest.h>

#include "dysel/fed/delta.hh"
#include "dysel/store/selection_store.hh"

using namespace dysel;
using namespace dysel::store;

namespace {

constexpr const char *kDev = "cpu/test-device/c8@3.60GHz";

/** A synthetic profiled launch report with two variants. */
runtime::LaunchReport
profiledReport(const std::string &sig, std::uint64_t units,
               int selected = 1)
{
    runtime::LaunchReport r;
    r.signature = sig;
    r.profiled = true;
    r.totalUnits = units;
    r.profiledUnits = 256;
    r.selected = selected;
    r.profiles.resize(2);
    r.profiles[0] = {"slow", 4000, 4200, 3900, 128};
    r.profiles[1] = {"fast", 1000, 1100, 950, 128};
    r.selectedName = r.profiles[static_cast<std::size_t>(selected)].name;
    return r;
}

/** A plain (cache-served) launch taking @p unit_ns per unit. */
runtime::LaunchReport
plainReport(const std::string &sig, std::uint64_t units, double unit_ns)
{
    runtime::LaunchReport r;
    r.signature = sig;
    r.profiled = false;
    r.fromCache = true;
    r.totalUnits = units;
    r.startTime = 0;
    r.endTime = static_cast<sim::TimeNs>(unit_ns
                                         * static_cast<double>(units));
    return r;
}

} // namespace

TEST(Bucket, Boundaries)
{
    EXPECT_EQ(bucketOf(0), 0u);
    EXPECT_EQ(bucketOf(1), 0u);
    EXPECT_EQ(bucketOf(2), 1u);
    EXPECT_EQ(bucketOf(3), 1u);
    EXPECT_EQ(bucketOf(4), 2u);
    EXPECT_EQ(bucketOf(1023), 9u);
    EXPECT_EQ(bucketOf(1024), 10u);
    EXPECT_EQ(bucketOf(2047), 10u);
    EXPECT_EQ(bucketOf(2048), 11u);
}

TEST(Bucket, RangeRoundTrips)
{
    for (unsigned b = 1; b < 40; ++b) {
        const auto [lo, hi] = bucketRange(b);
        EXPECT_EQ(bucketOf(lo), b);
        EXPECT_EQ(bucketOf(hi), b);
        EXPECT_EQ(bucketOf(hi + 1), b + 1);
    }
}

TEST(Bucket, ExactPowersOfTwoOpenTheirBucket)
{
    // 2^b is the *first* unit count of bucket b, not the last of
    // b - 1: an off-by-one here silently halves interpolation
    // distances at every boundary.
    for (unsigned b = 1; b < 64; ++b) {
        const std::uint64_t po2 = std::uint64_t{1} << b;
        EXPECT_EQ(bucketOf(po2), b) << "2^" << b;
        EXPECT_EQ(bucketOf(po2 - 1), b - 1) << "2^" << b << " - 1";
    }
}

TEST(Bucket, HighBucketsDoNotWrap)
{
    // The uint64 edge: 2^63 and everything above it is bucket 63, and
    // the range arithmetic must neither shift by >= 64 (UB) nor wrap
    // `lo * 2 - 1` past 2^64 back to a small bucket.
    EXPECT_EQ(bucketOf(std::uint64_t{1} << 62), 62u);
    EXPECT_EQ(bucketOf(std::uint64_t{1} << 63), 63u);
    EXPECT_EQ(bucketOf(~std::uint64_t{0}), 63u);

    const auto [lo62, hi62] = bucketRange(62);
    EXPECT_EQ(lo62, std::uint64_t{1} << 62);
    EXPECT_EQ(hi62, (std::uint64_t{1} << 63) - 1);

    const auto [lo63, hi63] = bucketRange(63);
    EXPECT_EQ(lo63, std::uint64_t{1} << 63);
    EXPECT_EQ(hi63, ~std::uint64_t{0});
    EXPECT_GT(hi63, lo63); // i.e. did not wrap

    // Out-of-range bucket indices (interpolation arithmetic can
    // produce bucket + d > 63) clamp to the edge bucket instead of
    // aliasing a small one.
    EXPECT_EQ(bucketRange(64), bucketRange(63));
    EXPECT_EQ(bucketRange(200), bucketRange(63));
}

TEST(Bucket, UnitsForBucketIsAnInverse)
{
    // unitsForBucket is the interpolation path's way back from a
    // neighbouring bucket index to a representative unit count; it
    // must land in exactly that bucket for every index, clamped
    // included.  Bucket 0 maps to 1 unit, never the degenerate 0.
    EXPECT_EQ(unitsForBucket(0), 1u);
    for (unsigned b = 0; b < 70; ++b)
        EXPECT_EQ(bucketOf(unitsForBucket(b)), std::min(b, 63u))
            << "bucket " << b;
}

TEST(SelectionStore, LookupMissesThenHitsAfterProfile)
{
    SelectionStore store;
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    EXPECT_EQ(store.misses(), 1u);

    store.recordProfile(kDev, profiledReport("k", 2048));
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selected, 1);
    EXPECT_EQ(rec->selectedName, "fast");
    EXPECT_EQ(rec->bucket, 11u);
    ASSERT_EQ(rec->profiles.size(), 2u);
    EXPECT_EQ(rec->profiles[0].name, "slow");
    EXPECT_EQ(store.hits(), 1u);

    // Same signature, different size bucket: still a miss.
    EXPECT_FALSE(store.lookup("k", kDev, 8192).has_value());
    // Same bucket, different device: still a miss.
    EXPECT_FALSE(store.lookup("k", "gpu/other", 2048).has_value());
}

TEST(SelectionStore, SameBucketDifferentUnitsHits)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    // 2048..4095 share bucket 11.
    EXPECT_TRUE(store.lookup("k", kDev, 4095).has_value());
    EXPECT_FALSE(store.lookup("k", kDev, 4096).has_value());
}

TEST(SelectionStore, UnprofiledReportsAreIgnored)
{
    SelectionStore store;
    store.recordProfile(kDev, plainReport("k", 2048, 10.0));
    EXPECT_EQ(store.size(), 0u);
}

TEST(SelectionStore, DriftQuarantinesThenServesRunnerUp)
{
    StoreConfig cfg;
    cfg.driftFactor = 1.5;
    SelectionStore store(cfg);
    store.recordProfile(kDev, profiledReport("k", 2048));

    // First plain run seeds the baseline; consistent runs confirm it.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.5)),
              Observation::Ok);
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->confidence, 2u);
    EXPECT_GT(rec->unitTimeNs, 0.0);

    // A 3x slowdown exceeds the 1.5x drift factor.  A record with a
    // profiled runner-up is quarantined, not dropped: it keeps
    // serving, with the next-best variant.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Quarantined);
    EXPECT_EQ(store.quarantineCount(), 1u);
    EXPECT_EQ(store.driftInvalidations(), 0u);
    rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "slow");
    EXPECT_EQ(rec->quarantinedVariant, 1);
    EXPECT_EQ(rec->cooldownLeft, cfg.quarantineCooldown);

    // The fallback drifting too exhausts the record: invalidated.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 40.0)),
              Observation::Ok); // seeds the fallback's baseline
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Invalidated);
    EXPECT_EQ(store.driftInvalidations(), 1u);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());

    // Re-profiling revalidates the record and lifts the quarantine.
    store.recordProfile(kDev, profiledReport("k", 2048, 0));
    rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->valid);
    EXPECT_EQ(rec->selectedName, "slow");
    EXPECT_EQ(rec->quarantinedVariant, -1);
    EXPECT_EQ(rec->profiledLaunches, 2u);
}

TEST(SelectionStore, QuarantineCooldownForcesReprofile)
{
    StoreConfig cfg;
    cfg.quarantineCooldown = 3;
    SelectionStore store(cfg);
    store.recordProfile(kDev, profiledReport("k", 2048));
    store.observePlain(kDev, plainReport("k", 2048, 10.0));
    ASSERT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Quarantined);

    // Three well-behaved fallback runs spend the cooldown; the last
    // one invalidates the record so the next launch re-profiles and
    // the quarantined variant gets to compete again.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 20.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 20.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 20.0)),
              Observation::Invalidated);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
}

TEST(SelectionStore, ReportFailureQuarantinesThenInvalidates)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));

    // A launch failure on the stored winner demotes it immediately.
    EXPECT_EQ(store.reportFailure("k", kDev, 2048),
              Observation::Quarantined);
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "slow");

    // The fallback failing too gives up on the record entirely.
    EXPECT_EQ(store.reportFailure("k", kDev, 2048),
              Observation::Invalidated);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    // Unknown keys are ignored.
    EXPECT_EQ(store.reportFailure("other", kDev, 2048),
              Observation::Ok);
}

TEST(SelectionStore, SingleVariantRecordInvalidatesOnDrift)
{
    SelectionStore store;
    runtime::LaunchReport r = profiledReport("k", 2048, 0);
    r.profiles.resize(1); // no runner-up to fall back on
    store.recordProfile(kDev, r);
    store.observePlain(kDev, plainReport("k", 2048, 10.0));
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Invalidated);
    EXPECT_EQ(store.quarantineCount(), 0u);
    EXPECT_EQ(store.driftInvalidations(), 1u);
}

TEST(SelectionStore, SpeedupDriftAlsoQuarantines)
{
    SelectionStore store; // default driftFactor 1.5
    store.recordProfile(kDev, profiledReport("k", 2048));
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Ok);
    // Getting much *faster* also means the stored ranking is stale.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Quarantined);
}

TEST(SelectionStore, ObservationsOfUnknownKeysAreIgnored)
{
    SelectionStore store;
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Ok);
    EXPECT_EQ(store.size(), 0u);
}

TEST(SelectionStore, JsonRoundTripPreservesEverything)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("a", 2048));
    store.recordProfile(kDev, profiledReport("b", 300, 0));
    store.recordProfile("gpu/dev2", profiledReport("a", 2048));
    store.observePlain(kDev, plainReport("a", 2048, 12.5));
    store.invalidate("b", kDev, bucketOf(300));
    // A quarantined record must survive the round trip mid-cooldown.
    store.recordProfile(kDev, profiledReport("c", 512));
    store.reportFailure("c", kDev, 512);

    SelectionStore loaded;
    loaded.loadJson(store.toJson());

    const auto before = store.records();
    const auto after = loaded.records();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].signature, after[i].signature);
        EXPECT_EQ(before[i].device, after[i].device);
        EXPECT_EQ(before[i].bucket, after[i].bucket);
        EXPECT_EQ(before[i].selected, after[i].selected);
        EXPECT_EQ(before[i].selectedName, after[i].selectedName);
        EXPECT_EQ(before[i].launches, after[i].launches);
        EXPECT_EQ(before[i].profiledLaunches, after[i].profiledLaunches);
        EXPECT_EQ(before[i].confidence, after[i].confidence);
        EXPECT_DOUBLE_EQ(before[i].unitTimeNs, after[i].unitTimeNs);
        EXPECT_EQ(before[i].valid, after[i].valid);
        EXPECT_EQ(before[i].quarantinedVariant,
                  after[i].quarantinedVariant);
        EXPECT_EQ(before[i].cooldownLeft, after[i].cooldownLeft);
        EXPECT_EQ(before[i].quarantines, after[i].quarantines);
        ASSERT_EQ(before[i].profiles.size(), after[i].profiles.size());
        for (std::size_t j = 0; j < before[i].profiles.size(); ++j) {
            EXPECT_EQ(before[i].profiles[j].name,
                      after[i].profiles[j].name);
            EXPECT_DOUBLE_EQ(before[i].profiles[j].metricNs,
                             after[i].profiles[j].metricNs);
            EXPECT_EQ(before[i].profiles[j].units,
                      after[i].profiles[j].units);
        }
    }
    // Identical selections serve identically after the round trip.
    auto rec = loaded.lookup("a", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "fast");
    EXPECT_FALSE(loaded.lookup("b", kDev, 300).has_value()); // invalid
    auto quarantined = loaded.lookup("c", kDev, 512);
    ASSERT_TRUE(quarantined.has_value());
    EXPECT_EQ(quarantined->selectedName, "slow");
    EXPECT_EQ(quarantined->quarantinedVariant, 1);
}

TEST(SelectionStore, LoadsVersionOneDocuments)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    // A pre-quarantine (version 1) document is the same format minus
    // the quarantine fields; it must load with quarantine at rest.
    support::Json doc = store.toJson();
    doc.set("version", support::Json(1));
    SelectionStore loaded;
    loaded.loadJson(doc);
    auto rec = loaded.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->quarantinedVariant, -1);
    EXPECT_EQ(rec->cooldownLeft, 0u);
}

TEST(SelectionStore, FileRoundTrip)
{
    // Written relative to the test's working directory, i.e. under
    // build/ when run through ctest; *.store.json is gitignored.
    const std::string path = "store_test.tmp.store.json";
    {
        SelectionStore store;
        store.recordProfile(kDev, profiledReport("k", 2048));
        ASSERT_TRUE(store.saveFile(path).ok());
    }
    SelectionStore loaded;
    ASSERT_TRUE(loaded.loadFile(path).ok());
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.lookup("k", kDev, 2048).has_value());
    std::remove(path.c_str());
}

TEST(SelectionStore, LoadRejectsGarbage)
{
    SelectionStore store;
    EXPECT_EQ(store.loadFile("/nonexistent/path/store.json").code(),
              support::StatusCode::NotFound);
    EXPECT_THROW(store.loadJson(support::Json::parse("{\"version\":99}")),
                 std::runtime_error);
}

TEST(SelectionStore, SaveToUnwritablePathFails)
{
    SelectionStore store;
    const auto st = store.saveFile("/nonexistent/dir/store.json");
    EXPECT_EQ(st.code(), support::StatusCode::Unavailable);
}

namespace {

/** Read a whole file into a string. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Overwrite a file with @p text. */
void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
}

/** A store with one record and one blacklist entry, saved to @p path. */
void
savePopulated(const std::string &path)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    store.blacklistVariant("k", "oob-writer", kDev, "redzone");
    ASSERT_TRUE(store.saveFile(path).ok());
}

} // namespace

TEST(SelectionStore, TruncatedFileRejectedWithoutPartialLoad)
{
    const std::string path = "store_test.truncated.store.json";
    savePopulated(path);
    const std::string text = slurp(path);
    ASSERT_GT(text.size(), 40u);
    spit(path, text.substr(0, text.size() / 2));

    SelectionStore loaded;
    loaded.recordProfile(kDev, profiledReport("existing", 512));
    const auto st = loaded.loadFile(path);
    EXPECT_EQ(st.code(), support::StatusCode::DataLoss);
    // The failed load must leave the previous contents untouched.
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.lookup("existing", kDev, 512).has_value());
    std::remove(path.c_str());
}

TEST(SelectionStore, ChecksumMismatchRejected)
{
    const std::string path = "store_test.badsum.store.json";
    savePopulated(path);
    // Corrupt the payload while keeping the JSON well-formed: the
    // stored winner's name changes, the checksum does not.
    std::string text = slurp(path);
    const auto pos = text.find("\"fast\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 6, "\"fist\"");
    spit(path, text);

    SelectionStore loaded;
    const auto st = loaded.loadFile(path);
    EXPECT_EQ(st.code(), support::StatusCode::DataLoss);
    EXPECT_NE(st.message().find("checksum"), std::string::npos);
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(SelectionStore, LegacyNakedDocumentStillLoads)
{
    // Pre-checksum saveFile wrote the version-2 document naked (no
    // envelope); such files must keep loading after an upgrade.
    const std::string path = "store_test.legacy.store.json";
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    support::Json doc = store.toJson();
    doc.set("version", support::Json(2));
    // v2 had no blacklist array either.
    spit(path, doc.dump(2) + "\n");

    SelectionStore loaded;
    ASSERT_TRUE(loaded.loadFile(path).ok());
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.blacklistSize(), 0u);
    std::remove(path.c_str());
}

TEST(SelectionStore, MigrationRoundTripsAcrossVersions)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));
    store.blacklistVariant("k", "bad", kDev, "nan");

    // v1 and v2: quarantine / blacklist state at rest.
    for (int v = 1; v <= 2; ++v) {
        support::Json doc = store.toJson();
        doc.set("version", support::Json(v));
        SelectionStore loaded;
        loaded.loadJson(doc);
        EXPECT_EQ(loaded.size(), 1u);
        // The v3 save carried the blacklist array, so even a
        // down-versioned document keeps it; a true v1/v2 document
        // simply has none.
        auto rec = loaded.lookup("k", kDev, 2048);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->selectedName, "fast");
    }

    // v3: the full round trip, blacklist included.
    SelectionStore loaded;
    loaded.loadJson(store.toJson());
    EXPECT_TRUE(loaded.isBlacklisted("k", "bad", kDev));
    EXPECT_FALSE(loaded.isBlacklisted("k", "bad", "gpu/other"));
    ASSERT_EQ(loaded.blacklistEntries().size(), 1u);
    EXPECT_EQ(loaded.blacklistEntries()[0].reason, "nan");
    EXPECT_EQ(loaded.blacklistEntries()[0].strikes, 1u);
}

TEST(SelectionStore, BlacklistInvalidatesMatchingRecords)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048));     // fast
    store.recordProfile(kDev, profiledReport("k", 300));      // fast
    store.recordProfile(kDev, profiledReport("other", 2048, 0)); // slow
    ASSERT_TRUE(store.lookup("k", kDev, 2048).has_value());

    // Blacklisting the winner kills its records in every bucket of
    // the (signature, device), but not other signatures.
    store.blacklistVariant("k", "fast", kDev, "mismatch");
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    EXPECT_FALSE(store.lookup("k", kDev, 300).has_value());
    EXPECT_TRUE(store.lookup("other", kDev, 2048).has_value());

    EXPECT_TRUE(store.isBlacklisted("k", "fast", kDev));
    const auto bl = store.blacklistedVariants("k", kDev);
    ASSERT_EQ(bl.size(), 1u);
    EXPECT_EQ(bl[0].first, "fast");
    EXPECT_EQ(bl[0].second, "mismatch");

    // Repeat reports bump the strike count, not the entry count.
    store.blacklistVariant("k", "fast", kDev, "redzone");
    EXPECT_EQ(store.blacklistSize(), 1u);
    EXPECT_EQ(store.blacklistEntries()[0].strikes, 2u);
    EXPECT_EQ(store.blacklistEntries()[0].reason, "redzone");
}

TEST(SelectionStore, BlacklistSurvivesFileRoundTrip)
{
    const std::string path = "store_test.blacklist.store.json";
    savePopulated(path);

    SelectionStore loaded;
    ASSERT_TRUE(loaded.loadFile(path).ok());
    EXPECT_TRUE(loaded.isBlacklisted("k", "oob-writer", kDev));
    EXPECT_EQ(loaded.blacklistSize(), 1u);
    std::remove(path.c_str());
}

namespace {

/**
 * Golden documents: the byte-for-byte shape each historical format
 * version wrote, frozen as literals so a loader regression cannot
 * hide behind toJson() changing in lockstep.  v1 predates quarantine,
 * v2 predates the blacklist, v3 predates predictions / extensions,
 * v4 predates the federation envelope (Lamport stamps, version
 * vectors, profiling provenance), v5 is current.
 */
constexpr const char *kGoldenV1 = R"({
  "records": [
    {
      "bucket": 11,
      "confidence": 3,
      "device": "cpu/test-device/c8@3.60GHz",
      "launches": 7,
      "profiled_launches": 2,
      "profiles": [
        {"busy_ns": 3900, "metric_ns": 4000, "name": "slow",
         "span_ns": 4200, "units": 128},
        {"busy_ns": 950, "metric_ns": 1000, "name": "fast",
         "span_ns": 1100, "units": 128}
      ],
      "selected": 1,
      "selected_name": "fast",
      "signature": "gold",
      "unit_time_ns": 12.5,
      "valid": true
    }
  ],
  "version": 1
})";

constexpr const char *kGoldenV2 = R"({
  "records": [
    {
      "bucket": 11,
      "confidence": 0,
      "cooldown_left": 5,
      "device": "cpu/test-device/c8@3.60GHz",
      "launches": 9,
      "profiled_launches": 1,
      "profiles": [
        {"busy_ns": 3900, "metric_ns": 4000, "name": "slow",
         "span_ns": 4200, "units": 128},
        {"busy_ns": 950, "metric_ns": 1000, "name": "fast",
         "span_ns": 1100, "units": 128}
      ],
      "quarantined_variant": 1,
      "quarantines": 1,
      "selected": 0,
      "selected_name": "slow",
      "signature": "gold",
      "unit_time_ns": 0.0,
      "valid": true
    }
  ],
  "version": 2
})";

constexpr const char *kGoldenV3 = R"({
  "blacklist": [
    {
      "device": "cpu/test-device/c8@3.60GHz",
      "reason": "redzone",
      "signature": "gold",
      "strikes": 2,
      "variant": "oob-writer"
    }
  ],
  "records": [
    {
      "bucket": 11,
      "confidence": 3,
      "cooldown_left": 0,
      "device": "cpu/test-device/c8@3.60GHz",
      "launches": 7,
      "profiled_launches": 2,
      "profiles": [
        {"busy_ns": 3900, "metric_ns": 4000, "name": "slow",
         "span_ns": 4200, "units": 128},
        {"busy_ns": 950, "metric_ns": 1000, "name": "fast",
         "span_ns": 1100, "units": 128}
      ],
      "quarantined_variant": -1,
      "quarantines": 0,
      "selected": 1,
      "selected_name": "fast",
      "signature": "gold",
      "unit_time_ns": 12.5,
      "valid": true
    }
  ],
  "version": 3
})";

constexpr const char *kGoldenV4 = R"({
  "blacklist": [
    {
      "device": "cpu/test-device/c8@3.60GHz",
      "reason": "redzone",
      "signature": "gold",
      "strikes": 2,
      "variant": "oob-writer"
    }
  ],
  "extensions": {
    "predictor": {"weights": 3}
  },
  "records": [
    {
      "bucket": 11,
      "confidence": 3,
      "cooldown_left": 0,
      "device": "cpu/test-device/c8@3.60GHz",
      "launches": 7,
      "predicted": false,
      "predicted_confidence": 0.0,
      "profiled_launches": 2,
      "profiles": [
        {"busy_ns": 3900, "metric_ns": 4000, "name": "slow",
         "span_ns": 4200, "units": 128},
        {"busy_ns": 950, "metric_ns": 1000, "name": "fast",
         "span_ns": 1100, "units": 128}
      ],
      "quarantined_variant": -1,
      "quarantines": 0,
      "selected": 1,
      "selected_name": "fast",
      "signature": "gold",
      "unit_time_ns": 12.5,
      "valid": true
    }
  ],
  "version": 4
})";

constexpr const char *kGoldenV5 = R"({
  "blacklist": [
    {
      "device": "cpu/test-device/c8@3.60GHz",
      "reason": "redzone",
      "signature": "gold",
      "stamp_origin": 2,
      "stamp_tick": 9,
      "strikes": 2,
      "variant": "oob-writer"
    }
  ],
  "extension_stamps": {
    "predictor": {"origin": 1, "tick": 14}
  },
  "extensions": {
    "predictor": {"weights": 3}
  },
  "records": [
    {
      "bucket": 11,
      "confidence": 3,
      "cooldown_left": 0,
      "device": "cpu/test-device/c8@3.60GHz",
      "launches": 7,
      "predicted": false,
      "predicted_confidence": 0.0,
      "profile_cid": 4242,
      "profile_origin": 2,
      "profiled_launches": 2,
      "profiles": [
        {"busy_ns": 3900, "metric_ns": 4000, "name": "slow",
         "span_ns": 4200, "units": 128},
        {"busy_ns": 950, "metric_ns": 1000, "name": "fast",
         "span_ns": 1100, "units": 128}
      ],
      "quarantined_variant": -1,
      "quarantines": 0,
      "selected": 1,
      "selected_name": "fast",
      "signature": "gold",
      "stamp_origin": 2,
      "stamp_tick": 17,
      "unit_time_ns": 12.5,
      "valid": true,
      "vv": {"0": 5, "2": 17}
    }
  ],
  "version": 5
})";

} // namespace

TEST(SelectionStore, GoldenV1DocumentLoads)
{
    SelectionStore store;
    store.loadJson(support::Json::parse(kGoldenV1));
    ASSERT_EQ(store.size(), 1u);
    auto rec = store.lookup("gold", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selected, 1);
    EXPECT_EQ(rec->selectedName, "fast");
    EXPECT_EQ(rec->launches, 7u);
    EXPECT_EQ(rec->profiledLaunches, 2u);
    EXPECT_EQ(rec->confidence, 3u);
    EXPECT_DOUBLE_EQ(rec->unitTimeNs, 12.5);
    ASSERT_EQ(rec->profiles.size(), 2u);
    EXPECT_EQ(rec->profiles[0].name, "slow");
    EXPECT_DOUBLE_EQ(rec->profiles[1].metricNs, 1000.0);
    // Fields v1 never wrote load at rest.
    EXPECT_EQ(rec->quarantinedVariant, -1);
    EXPECT_EQ(rec->cooldownLeft, 0u);
    EXPECT_FALSE(rec->predicted);
    EXPECT_EQ(store.blacklistSize(), 0u);
}

TEST(SelectionStore, GoldenV2DocumentLoadsQuarantineState)
{
    SelectionStore store;
    store.loadJson(support::Json::parse(kGoldenV2));
    ASSERT_EQ(store.size(), 1u);
    auto rec = store.lookup("gold", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    // The record is mid-quarantine: serving the fallback, cooldown
    // ticking.  That exact state must survive the load.
    EXPECT_EQ(rec->selectedName, "slow");
    EXPECT_EQ(rec->quarantinedVariant, 1);
    EXPECT_EQ(rec->cooldownLeft, 5u);
    EXPECT_EQ(rec->quarantines, 1u);
    EXPECT_FALSE(rec->predicted);
}

TEST(SelectionStore, GoldenV3DocumentLoadsBlacklist)
{
    SelectionStore store;
    store.loadJson(support::Json::parse(kGoldenV3));
    ASSERT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.lookup("gold", kDev, 2048).has_value());
    EXPECT_TRUE(store.isBlacklisted("gold", "oob-writer", kDev));
    ASSERT_EQ(store.blacklistEntries().size(), 1u);
    EXPECT_EQ(store.blacklistEntries()[0].reason, "redzone");
    EXPECT_EQ(store.blacklistEntries()[0].strikes, 2u);
}

TEST(SelectionStore, GoldenV4DocumentLoadsPredictionsAndExtensions)
{
    SelectionStore store;
    store.loadJson(support::Json::parse(kGoldenV4));
    ASSERT_EQ(store.size(), 1u);
    auto rec = store.lookup("gold", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_FALSE(rec->predicted);
    EXPECT_TRUE(store.isBlacklisted("gold", "oob-writer", kDev));
    auto ext = store.extension("predictor");
    ASSERT_TRUE(ext.has_value());
    EXPECT_EQ(ext->intOr("weights", 0), 3);
    // v4 never stamped anything; the loader stamps everything fresh
    // so two replicas seeded from the same legacy file cannot present
    // identical stamps over possibly-diverging payloads.
    EXPECT_GT(rec->stamp.tick, 0u);
    EXPECT_EQ(rec->profileCid, 0u);
}

TEST(SelectionStore, GoldenV5DocumentLoadsFederationEnvelope)
{
    SelectionStore store;
    store.loadJson(support::Json::parse(kGoldenV5));
    ASSERT_EQ(store.size(), 1u);
    auto rec = store.lookup("gold", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    // The causal metadata must survive exactly: stamps decide every
    // future merge, the version vector decides staleness, and the
    // provenance fields are the cross-replica trace link.
    EXPECT_EQ(rec->stamp.tick, 17u);
    EXPECT_EQ(rec->stamp.origin, 2u);
    EXPECT_EQ(rec->vv.ticks.at(0u), 5u);
    EXPECT_EQ(rec->vv.ticks.at(2u), 17u);
    EXPECT_EQ(rec->profileCid, 4242u);
    EXPECT_EQ(rec->profileOrigin, 2u);
    ASSERT_EQ(store.blacklistEntries().size(), 1u);
    EXPECT_EQ(store.blacklistEntries()[0].stamp.tick, 9u);
    EXPECT_EQ(store.blacklistEntries()[0].stamp.origin, 2u);
    ASSERT_EQ(store.extensionEntries().size(), 1u);
    EXPECT_EQ(store.extensionEntries()[0].stamp.tick, 14u);
    EXPECT_EQ(store.extensionEntries()[0].stamp.origin, 1u);
    // The Lamport clock resumes past the freshest loaded stamp, so
    // the first post-load local write outranks the whole document.
    EXPECT_EQ(store.lamportClock(), 17u);
}

TEST(SelectionStore, GoldenDocumentsRoundTripThroughV5)
{
    // Loading any historical version and saving re-emits the current
    // format with nothing dropped.
    for (const char *golden :
         {kGoldenV1, kGoldenV2, kGoldenV3, kGoldenV4, kGoldenV5}) {
        SelectionStore store;
        store.loadJson(support::Json::parse(golden));
        const support::Json doc = store.toJson();
        EXPECT_EQ(doc.intOr("version", 0), 5);

        SelectionStore again;
        again.loadJson(doc);
        EXPECT_EQ(again.size(), store.size());
        EXPECT_EQ(again.blacklistSize(), store.blacklistSize());
        const auto before = store.records();
        const auto after = again.records();
        ASSERT_EQ(before.size(), after.size());
        for (std::size_t i = 0; i < before.size(); ++i) {
            EXPECT_EQ(before[i].selectedName, after[i].selectedName);
            EXPECT_EQ(before[i].launches, after[i].launches);
            EXPECT_EQ(before[i].quarantinedVariant,
                      after[i].quarantinedVariant);
            EXPECT_EQ(before[i].cooldownLeft, after[i].cooldownLeft);
            EXPECT_EQ(before[i].profiles.size(),
                      after[i].profiles.size());
        }
    }
}

namespace {

/** A well-formed one-record delta to mutate in the corruption tests. */
support::Json
healthyDelta()
{
    SelectionStore store;
    store.setReplica(3);
    store.recordProfile(kDev, profiledReport("gold", 2048));
    fed::Delta d;
    d.replica = 3;
    d.incarnation = 0xabcdef0123456789ull;
    d.seqHigh = 1;
    d.records = store.records();
    return fed::encodeDelta(d);
}

} // namespace

TEST(FedDelta, EncodeDecodeRoundTrip)
{
    const support::Json doc = healthyDelta();
    fed::Delta out;
    ASSERT_TRUE(fed::decodeDelta(doc, out).ok());
    EXPECT_EQ(out.replica, 3u);
    EXPECT_EQ(out.incarnation, 0xabcdef0123456789ull);
    EXPECT_EQ(out.seqHigh, 1u);
    ASSERT_EQ(out.records.size(), 1u);
    EXPECT_EQ(out.records[0].signature, "gold");
    EXPECT_EQ(out.records[0].stamp.origin, 3u);
    EXPECT_TRUE(out.blacklist.empty());
    EXPECT_TRUE(out.extensions.empty());
}

TEST(FedDelta, TruncatedPayloadTextIsRejectedByTheParser)
{
    // A half-written HTTP body dies in Json::parse, before decode.
    const std::string whole = healthyDelta().dump(0);
    const std::string truncated = whole.substr(0, whole.size() / 2);
    EXPECT_THROW(support::Json::parse(truncated), std::runtime_error);
}

TEST(FedDelta, GarbledPayloadsAreTypedErrorsAndLeaveOutUntouched)
{
    // Every corruption below must surface as INVALID_ARGUMENT --
    // never a throw, never a partial application -- because deltas
    // arrive from half-dead peers over the network.
    fed::Delta out;
    out.replica = 42;
    out.seqHigh = 99;

    // Not an object at all.
    auto st = fed::decodeDelta(support::Json::array(), out);
    EXPECT_EQ(st.code(), support::StatusCode::InvalidArgument);

    // A future wire version.
    support::Json vnext = healthyDelta();
    vnext.set("fed_version", support::Json(2));
    st = fed::decodeDelta(vnext, out);
    EXPECT_EQ(st.code(), support::StatusCode::InvalidArgument);

    // Truncated framing: seq_high missing.
    support::Json noseq = support::Json::object();
    noseq.set("fed_version", support::Json(1));
    noseq.set("replica", support::Json(3));
    noseq.set("incarnation", support::Json("00ff"));
    st = fed::decodeDelta(noseq, out);
    EXPECT_EQ(st.code(), support::StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("truncated or garbled"),
              std::string::npos);

    // Garbled record: an entry missing its key fields.
    support::Json badrec = healthyDelta();
    support::Json recs = support::Json::array();
    recs.push(support::Json::object());
    badrec.set("records", std::move(recs));
    st = fed::decodeDelta(badrec, out);
    EXPECT_EQ(st.code(), support::StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("truncated or garbled"),
              std::string::npos);

    // Wrong kind in the records slot.
    support::Json badkind = healthyDelta();
    badkind.set("records", support::Json("not-an-array"));
    st = fed::decodeDelta(badkind, out);
    EXPECT_EQ(st.code(), support::StatusCode::InvalidArgument);

    // No failure above touched the output delta.
    EXPECT_EQ(out.replica, 42u);
    EXPECT_EQ(out.seqHigh, 99u);
    EXPECT_TRUE(out.records.empty());
}

TEST(SelectionStore, PredictedFieldsAndExtensionsRoundTrip)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("measured", 2048));
    store.seedPrediction("guessed", kDev, 4096, 1, "fast", 0.87);
    support::Json model = support::Json::object();
    model.set("weights", support::Json(3));
    store.setExtension("predictor", model);

    SelectionStore loaded;
    loaded.loadJson(store.toJson());
    auto guessed = loaded.lookup("guessed", kDev, 4096);
    ASSERT_TRUE(guessed.has_value());
    EXPECT_TRUE(guessed->predicted);
    EXPECT_DOUBLE_EQ(guessed->predictedConfidence, 0.87);
    auto measured = loaded.lookup("measured", kDev, 2048);
    ASSERT_TRUE(measured.has_value());
    EXPECT_FALSE(measured->predicted);
    auto ext = loaded.extension("predictor");
    ASSERT_TRUE(ext.has_value());
    EXPECT_EQ(ext->intOr("weights", 0), 3);
    EXPECT_FALSE(loaded.extension("other").has_value());
}

TEST(SelectionStore, ExtensionsSurviveFileRoundTrip)
{
    const std::string path = "store_test.ext.store.json";
    {
        SelectionStore store;
        store.recordProfile(kDev, profiledReport("k", 2048));
        support::Json model = support::Json::object();
        model.set("version", support::Json(1));
        store.setExtension("predictor", model);
        ASSERT_TRUE(store.saveFile(path).ok());
    }
    SelectionStore loaded;
    ASSERT_TRUE(loaded.loadFile(path).ok());
    auto ext = loaded.extension("predictor");
    ASSERT_TRUE(ext.has_value());
    EXPECT_EQ(ext->intOr("version", 0), 1);

    // Null removes; a store without extensions emits none.
    loaded.setExtension("predictor", support::Json());
    EXPECT_FALSE(loaded.extension("predictor").has_value());
    EXPECT_FALSE(loaded.toJson().has("extensions"));
    std::remove(path.c_str());
}

TEST(SelectionStore, SeedPredictionServesWithoutProfiling)
{
    SelectionStore store;
    store.seedPrediction("k", kDev, 2048, 1, "fast", 0.9);
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->predicted);
    EXPECT_EQ(rec->selected, 1);
    EXPECT_EQ(rec->selectedName, "fast");
    EXPECT_TRUE(rec->profiles.empty());
    EXPECT_EQ(rec->profiledLaunches, 0u);

    // Degenerate seeds are refused outright.
    store.seedPrediction("bad", kDev, 2048, -1, "fast", 0.9);
    store.seedPrediction("bad", kDev, 2048, 1, "", 0.9);
    EXPECT_FALSE(store.lookup("bad", kDev, 2048).has_value());
}

TEST(SelectionStore, MeasuredRecordOutranksPrediction)
{
    SelectionStore store;
    store.recordProfile(kDev, profiledReport("k", 2048)); // fast
    store.seedPrediction("k", kDev, 2048, 0, "slow", 0.99);
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_FALSE(rec->predicted);
    EXPECT_EQ(rec->selectedName, "fast"); // the measurement stands

    // ...but an invalidated measurement is fair game for a seed.
    store.invalidate("k", kDev, bucketOf(2048));
    store.seedPrediction("k", kDev, 2048, 0, "slow", 0.8);
    rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->predicted);
    EXPECT_EQ(rec->selectedName, "slow");
    // The lifetime launch counters carried over from the old record.
    EXPECT_EQ(rec->profiledLaunches, 1u);
}

TEST(SelectionStore, ProfileClearsPredictedFlag)
{
    SelectionStore store;
    store.seedPrediction("k", kDev, 2048, 0, "slow", 0.7);
    store.recordProfile(kDev, profiledReport("k", 2048)); // measures
    auto rec = store.lookup("k", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_FALSE(rec->predicted);
    EXPECT_DOUBLE_EQ(rec->predictedConfidence, 0.0);
    EXPECT_EQ(rec->selectedName, "fast");
}

TEST(SelectionStore, PredictedRecordFailureDemotesToForcedProfile)
{
    SelectionStore store;
    std::vector<SelectionRecord> demoted;
    store.setDemotionObserver(
        [&](const SelectionRecord &r) { demoted.push_back(r); });
    store.seedPrediction("k", kDev, 2048, 1, "fast", 0.9);

    // A predicted record has no profiled runner-up: the first failure
    // invalidates it outright, so the next lookup misses and forces a
    // real profiling pass -- and the demotion feed saw the bad guess.
    EXPECT_EQ(store.reportFailure("k", kDev, 2048),
              Observation::Invalidated);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    ASSERT_EQ(demoted.size(), 1u);
    EXPECT_TRUE(demoted[0].predicted);
    EXPECT_EQ(demoted[0].selectedName, "fast");

    // Failures on measured records do not feed the demotion observer.
    store.recordProfile(kDev, profiledReport("k", 2048));
    store.reportFailure("k", kDev, 2048);
    EXPECT_EQ(demoted.size(), 1u);
}

TEST(SelectionStore, PredictedRecordDriftDemotes)
{
    SelectionStore store; // driftFactor 1.5
    std::vector<SelectionRecord> demoted;
    store.setDemotionObserver(
        [&](const SelectionRecord &r) { demoted.push_back(r); });
    store.seedPrediction("k", kDev, 2048, 1, "fast", 0.9);

    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Ok); // seeds the baseline
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 30.0)),
              Observation::Invalidated);
    ASSERT_EQ(demoted.size(), 1u);
    EXPECT_TRUE(demoted[0].predicted);
}

TEST(SelectionStore, PredictionProbationForcesConfirmingProfile)
{
    StoreConfig cfg;
    cfg.predictedProbationLaunches = 3;
    SelectionStore store(cfg);
    std::vector<SelectionRecord> demoted;
    store.setDemotionObserver(
        [&](const SelectionRecord &r) { demoted.push_back(r); });
    store.seedPrediction("k", kDev, 2048, 1, "fast", 0.9);

    // Two well-behaved launches ride the prediction; the third ends
    // probation and invalidates it so a real profile confirms the
    // guess.  Scheduled validation is NOT a mis-prediction: the
    // demotion feed stays silent and the counters stay reconcilable.
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Ok);
    EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
              Observation::Invalidated);
    EXPECT_FALSE(store.lookup("k", kDev, 2048).has_value());
    EXPECT_TRUE(demoted.empty());

    // Measured records never expire this way.
    store.recordProfile(kDev, profiledReport("k", 2048));
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(store.observePlain(kDev, plainReport("k", 2048, 10.0)),
                  Observation::Ok);
}

TEST(SelectionStore, ProfileObserverFeedsEveryProfilingPass)
{
    SelectionStore store;
    std::vector<SelectionRecord> fed;
    store.setProfileObserver(
        [&](const SelectionRecord &r) { fed.push_back(r); });
    store.recordProfile(kDev, profiledReport("a", 2048));
    store.recordProfile(kDev, profiledReport("b", 300, 0));
    store.recordProfile(kDev, plainReport("c", 2048, 10.0)); // ignored
    ASSERT_EQ(fed.size(), 2u);
    EXPECT_EQ(fed[0].signature, "a");
    EXPECT_EQ(fed[0].selectedName, "fast");
    EXPECT_EQ(fed[1].signature, "b");
    EXPECT_EQ(fed[1].selectedName, "slow");

    // The observer may call back into the store: recursive use must
    // not deadlock (the feed fires outside the lock).
    store.setProfileObserver([&](const SelectionRecord &r) {
        (void)store.lookup(r.signature, r.device, 2048);
    });
    store.recordProfile(kDev, profiledReport("d", 2048));

    // Detaching stops the feed.
    store.setProfileObserver(nullptr);
    store.recordProfile(kDev, profiledReport("e", 2048));
    EXPECT_EQ(fed.size(), 2u);
}

TEST(SelectionStore, BlacklistDemotesPredictedRecords)
{
    SelectionStore store;
    std::vector<SelectionRecord> demoted;
    store.setDemotionObserver(
        [&](const SelectionRecord &r) { demoted.push_back(r); });
    store.seedPrediction("k", kDev, 2048, 1, "fast", 0.9);
    store.seedPrediction("k", kDev, 8192, 1, "fast", 0.9);
    store.recordProfile(kDev, profiledReport("other", 2048)); // fast too

    // The guard blacklisting the predicted winner is the strongest
    // possible mis-prediction signal: both predicted records demote
    // (and feed the corrective observer); the measured record of the
    // other signature just invalidates, no feed.
    store.blacklistVariant("k", "fast", kDev, "mismatch");
    store.blacklistVariant("other", "fast", kDev, "mismatch");
    EXPECT_EQ(demoted.size(), 2u);
    for (const auto &r : demoted) {
        EXPECT_EQ(r.signature, "k");
        EXPECT_TRUE(r.predicted);
    }
}
