/**
 * @file
 * Property sweeps over the DySel runtime: for every combination of
 * profiling mode, orchestration, device kind, and work-assignment
 * pairing, the runtime must (a) cover every workload unit exactly
 * once in the final output, (b) select the genuinely faster variant,
 * and (c) respect the Table 1 space bounds.  Parameterized gtest
 * keeps each combination an individually reported test.
 */
#include <gtest/gtest.h>

#include "dysel/runtime.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/gpu/gpu_device.hh"

using namespace dysel;
using namespace dysel::runtime;

namespace {

constexpr std::uint32_t laneCount = 16;

/** Marker kernel: out[unit] = marker; `cost` ALU ops per unit. */
kdp::KernelVariant
markerKernel(const char *name, std::int32_t marker, std::uint64_t cost,
             std::uint64_t waf)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = waf;
    v.sandboxIndex = {0};
    v.fn = [marker, cost](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, cost);
        }
    };
    return v;
}

struct Combo
{
    ProfilingMode mode;
    Orchestration orch;
    bool gpu;
    std::uint64_t wafSlow;
    std::uint64_t wafFast;
};

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    const Combo &c = info.param;
    std::string s = compiler::profilingModeName(c.mode);
    s += std::string("_") + orchestrationName(c.orch);
    s += c.gpu ? "_gpu" : "_cpu";
    s += "_waf" + std::to_string(c.wafSlow) + "x"
         + std::to_string(c.wafFast);
    for (char &ch : s)
        if (ch == '-')
            ch = '_';
    return s;
}

class RuntimeSweep : public ::testing::TestWithParam<Combo>
{
};

} // namespace

TEST_P(RuntimeSweep, CoverageSelectionAndSpaceBounds)
{
    const Combo c = GetParam();

    std::unique_ptr<sim::Device> device;
    if (c.gpu)
        device = std::make_unique<sim::GpuDevice>();
    else
        device = std::make_unique<sim::CpuDevice>();
    Runtime rt(*device);

    rt.addKernel("k", markerKernel("slow", 1, 3000, c.wafSlow));
    rt.addKernel("k", markerKernel("fast", 2, 100, c.wafFast));

    constexpr std::uint64_t units = 4096;
    kdp::Buffer<std::int32_t> out(units, kdp::MemSpace::Global, "out");
    out.fill(-1);
    kdp::KernelArgs args;
    args.add(out).add(static_cast<std::int64_t>(units));

    LaunchOptions opt;
    opt.mode = c.mode;
    opt.modeExplicit = true;
    opt.orch = c.orch;
    const auto report = rt.launchKernel("k", units, args, opt);

    // (b) The faster variant wins in every configuration.
    EXPECT_EQ(report.selectedName, "fast");
    EXPECT_TRUE(report.profiled);
    EXPECT_EQ(report.mode, c.mode);

    // (a) Full coverage: every unit written by some variant, and in
    // swap mode exclusively by the winner.
    for (std::uint64_t u = 0; u < units; ++u) {
        EXPECT_NE(out.at(u), -1) << "unit " << u << " never computed";
        if (c.mode == ProfilingMode::Swap)
            EXPECT_EQ(out.at(u), 2);
    }

    // (c) Table 1 space bounds.
    switch (c.mode) {
      case ProfilingMode::Fully:
        EXPECT_EQ(report.extraBytes, 0u);
        break;
      case ProfilingMode::Hybrid:
        EXPECT_LE(report.extraBytes, 1u * out.sizeBytes());
        break;
      case ProfilingMode::Swap:
        EXPECT_LE(report.extraBytes, 2u * out.sizeBytes());
        EXPECT_EQ(report.orch, Orchestration::Sync); // Table 1: no async
        break;
    }

    // Profiling volume stays within the configured cap.
    EXPECT_LE(report.productiveUnits, units / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, RuntimeSweep,
    ::testing::Values(
        // Mode x orchestration on CPU, uniform factors.
        Combo{ProfilingMode::Fully, Orchestration::Sync, false, 1, 1},
        Combo{ProfilingMode::Fully, Orchestration::Async, false, 1, 1},
        Combo{ProfilingMode::Hybrid, Orchestration::Sync, false, 1, 1},
        Combo{ProfilingMode::Hybrid, Orchestration::Async, false, 1, 1},
        Combo{ProfilingMode::Swap, Orchestration::Sync, false, 1, 1},
        Combo{ProfilingMode::Swap, Orchestration::Async, false, 1, 1},
        // Same on GPU.
        Combo{ProfilingMode::Fully, Orchestration::Sync, true, 1, 1},
        Combo{ProfilingMode::Fully, Orchestration::Async, true, 1, 1},
        Combo{ProfilingMode::Hybrid, Orchestration::Sync, true, 1, 1},
        Combo{ProfilingMode::Hybrid, Orchestration::Async, true, 1, 1},
        Combo{ProfilingMode::Swap, Orchestration::Sync, true, 1, 1},
        // Mixed work assignment factors (coarsened winners/losers).
        Combo{ProfilingMode::Fully, Orchestration::Sync, false, 1, 16},
        Combo{ProfilingMode::Fully, Orchestration::Async, false, 16, 1},
        Combo{ProfilingMode::Fully, Orchestration::Sync, true, 1, 16},
        Combo{ProfilingMode::Fully, Orchestration::Async, true, 16, 1},
        Combo{ProfilingMode::Hybrid, Orchestration::Sync, false, 4, 8},
        Combo{ProfilingMode::Hybrid, Orchestration::Sync, true, 8, 4},
        Combo{ProfilingMode::Swap, Orchestration::Sync, false, 2, 32},
        Combo{ProfilingMode::Swap, Orchestration::Sync, true, 32, 2}),
    comboName);
