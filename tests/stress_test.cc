/**
 * @file
 * Stress/soak tier for the dispatch hot path: many submitter threads
 * hammering a sharded service with mixed signatures, sizes, faults,
 * and occasional cancellations.
 *
 * The assertions are the service's liveness and accounting
 * invariants, not timings: every submitted job reaches a terminal
 * state, no JobResult::id is ever delivered twice, and the metrics
 * registry reconciles exactly (submitted = completed + failed +
 * cancelled + shed).  CI runs this binary under ASan and TSan (ctest
 * label `stress`), where the sharded locking either holds up or
 * crashes loudly.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"
#include "support/rng.hh"

using namespace dysel;
using namespace dysel::serve;

namespace {

constexpr std::uint32_t laneCount = 8;

kdp::KernelVariant
markerKernel(const char *name, std::int32_t marker,
             std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [marker, flops_per_unit](kdp::GroupCtx &g,
                                    const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

} // namespace

TEST(StressSoak, SixteenSubmittersAgainstFourFaultyDevices)
{
    constexpr unsigned kSubmitters = 16;
    constexpr unsigned kDevices = 4;
    constexpr unsigned kSignatures = 8;
    constexpr std::uint64_t kJobsPerSubmitter = 64; // 1024 jobs total
    constexpr std::uint64_t kBaseUnits = 256;
    constexpr unsigned kWindow = 8; ///< in-flight jobs per submitter

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.coalesce = true;
    cfg.maxQueueDepth = 64;
    cfg.admission = AdmissionPolicy::Block;
    DispatchService svc(store, cfg);

    // Shared injector: a mix of dropped launches, latency spikes, and
    // the occasional short hang, the same schedule every run.
    sim::FaultConfig fcfg;
    fcfg.launchFailProb = 0.05;
    fcfg.latencySpikeProb = 0.03;
    fcfg.hangProb = 0.01;
    fcfg.hangStallNs = 2'000'000;
    fcfg.seed = 0x57e55;
    sim::FaultInjector faults(fcfg);

    std::vector<std::string> sigs;
    for (unsigned s = 0; s < kSignatures; ++s)
        sigs.push_back("stress" + std::to_string(s));
    for (unsigned d = 0; d < kDevices; ++d) {
        const unsigned idx =
            svc.addDevice(std::make_unique<sim::CpuDevice>());
        svc.device(idx).setFaultInjector(&faults);
    }
    svc.registerKernelPool([&sigs](runtime::Runtime &rt) {
           for (const auto &sig : sigs) {
               rt.addKernel(sig, markerKernel("slow", 1, 4000));
               rt.addKernel(sig, markerKernel("fast", 2, 100));
               rt.setKernelInfo(sig, regularInfo(sig));
           }
       }).throwIfError();
    svc.start();

    struct SubmitterTally
    {
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t shed = 0;
        std::uint64_t cancelWon = 0;
        std::vector<std::uint64_t> resultIds;
        std::vector<std::uint64_t> callbackIds;
    };
    std::vector<SubmitterTally> tallies(kSubmitters);

    std::vector<std::thread> threads;
    threads.reserve(kSubmitters);
    for (unsigned t = 0; t < kSubmitters; ++t) {
        threads.emplace_back([&, t] {
            SubmitterTally &tally = tallies[t];
            support::Rng rng(0xacc0 + t);
            // One output slot per window position; a slot is reused
            // only after its previous job completed.
            std::vector<kdp::Buffer<std::int32_t>> outs;
            for (unsigned wdw = 0; wdw < kWindow; ++wdw)
                outs.emplace_back(kBaseUnits * 4, kdp::MemSpace::Global,
                                  "stress.out");
            std::vector<JobHandle> window;
            std::mutex cbMu; ///< guards callbackIds across workers

            auto settle = [&] {
                for (auto &h : window) {
                    const JobResult &r = h.result();
                    EXPECT_TRUE(h.done());
                    tally.resultIds.push_back(r.id);
                    if (r.ok()) {
                        tally.completed++;
                    } else if (r.status.code()
                               == support::StatusCode::Cancelled) {
                        // counted at cancel() time
                    } else if (r.status.code()
                               == support::StatusCode::
                                   ResourceExhausted) {
                        tally.shed++;
                    } else {
                        tally.failed++;
                    }
                }
                window.clear();
            };

            for (std::uint64_t j = 0; j < kJobsPerSubmitter; ++j) {
                Job job;
                job.signature = sigs[rng.nextBelow(sigs.size())];
                const std::uint64_t units = kBaseUnits
                                            << rng.nextBelow(3);
                job.units = units;
                job.args.add(outs[window.size()])
                    .add(static_cast<std::int64_t>(units));
                job.done = [&cbMu, &tally](const JobResult &r) {
                    std::lock_guard<std::mutex> lock(cbMu);
                    tally.callbackIds.push_back(r.id);
                };
                window.push_back(svc.submit(std::move(job)));

                // Occasionally try to withdraw the job just queued;
                // a won race must terminate it as Cancelled.
                if (rng.nextBelow(16) == 0
                    && window.back().cancel())
                    tally.cancelWon++;

                if (window.size() == kWindow)
                    settle();
            }
            settle();
        });
    }
    for (auto &th : threads)
        th.join();
    svc.drain();
    svc.stop();

    // Every job terminal, every id delivered exactly once -- via the
    // handle and via the completion callback.
    std::set<std::uint64_t> seen;
    std::uint64_t completed = 0, failed = 0, shed = 0, cancelled = 0;
    std::uint64_t callbacks = 0;
    for (const auto &tally : tallies) {
        completed += tally.completed;
        failed += tally.failed;
        shed += tally.shed;
        cancelled += tally.cancelWon;
        callbacks += tally.callbackIds.size();
        for (const std::uint64_t id : tally.resultIds) {
            EXPECT_NE(id, 0u);
            EXPECT_TRUE(seen.insert(id).second)
                << "duplicate JobResult::id " << id;
        }
    }
    const std::uint64_t total = kSubmitters * kJobsPerSubmitter;
    EXPECT_EQ(seen.size(), total);
    EXPECT_EQ(completed + failed + shed + cancelled, total);
    EXPECT_EQ(callbacks, total)
        << "done callback must fire exactly once per job";

    // The metrics registry reconciles with what the submitters saw.
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("jobs.submitted"), total);
    EXPECT_EQ(m.counterValue("jobs.completed"), completed);
    EXPECT_EQ(m.counterValue("jobs.failed"), failed);
    EXPECT_EQ(m.counterValue("jobs.cancelled"), cancelled);
    EXPECT_EQ(m.counterValue("admission.shed"), shed);
    EXPECT_EQ(m.counterValue("jobs.submitted"),
              m.counterValue("jobs.completed")
                  + m.counterValue("jobs.failed")
                  + m.counterValue("jobs.cancelled")
                  + m.counterValue("admission.shed"));

    // The soak actually exercised the machinery it stresses.
    EXPECT_GT(completed, total / 2);
    EXPECT_GT(faults.total(), 0u);
    EXPECT_GT(m.counterValue("store.hit"), 0u);
}
