/**
 * @file
 * Variant-guard tests: the buffer checks (tolerance comparator,
 * canary redzones, NaN/Inf screen), the strike ledger and blacklist,
 * the runtime's in-profiling validation of misbehaving variants (one
 * test per check), productive-slice repair, the all-failed and
 * all-blacklisted failure paths, and the acceptance storm: a pool
 * with one corrupt-output, one out-of-bounds-writing, and one hanging
 * variant beside two healthy ones completes every launch with
 * ground-truth output, blacklists exactly the three bad variants
 * (reconciled 1:1 against the fault injector's log), and a restarted
 * service importing the saved store never schedules them again.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dysel/guard/guard.hh"
#include "dysel/runtime.hh"
#include "dysel/store/selection_store.hh"
#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"

using namespace dysel;
using namespace dysel::serve;
using guard::CheckKind;
using guard::GuardConfig;
using guard::VariantGuard;
using sim::FaultInjector;
using sim::VariantFaultKind;

namespace {

constexpr std::uint32_t laneCount = 8;

/**
 * Marker kernel over a float output: out[unit] = marker.  @p ran, if
 * given, records that the variant really executed -- how the restart
 * tests prove a blacklisted variant was never scheduled.
 */
kdp::KernelVariant
floatKernel(const char *name, float marker, std::uint64_t flops_per_unit,
            std::atomic<bool> *ran = nullptr)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [marker, flops_per_unit, ran](kdp::GroupCtx &g,
                                         const kdp::KernelArgs &args) {
        if (ran)
            ran->store(true);
        auto &out = args.buf<float>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
floatInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

/** Guard-enabled runtime configuration. */
runtime::RuntimeConfig
guardedConfig(unsigned strike_limit)
{
    runtime::RuntimeConfig cfg;
    cfg.guard.enabled = true;
    cfg.guard.strikeLimit = strike_limit;
    return cfg;
}

/**
 * Launch options the guard tests pin down: explicit swap profiling
 * (every variant writes a private clone -- the fully-checkable mode)
 * and a single profiling execution per variant, so every guard
 * detection corresponds to exactly one injector log entry.
 */
runtime::LaunchOptions
guardedOpt(runtime::ProfilingMode mode = runtime::ProfilingMode::Swap)
{
    runtime::LaunchOptions opt;
    opt.mode = mode;
    opt.modeExplicit = true;
    opt.orch = runtime::Orchestration::Sync;
    opt.profileRepeats = 1;
    return opt;
}

/** One launch's float output buffer and args. */
struct GProbe
{
    std::string sig;
    std::uint64_t units;
    kdp::Buffer<float> out;
    kdp::KernelArgs args;

    GProbe(std::string s, std::uint64_t n)
        : sig(std::move(s)), units(n),
          out(n, kdp::MemSpace::Global, "out")
    {
        out.fill(-1.0f);
        args.add(out).add(static_cast<std::int64_t>(n));
    }

    void
    expectGroundTruth(float marker) const
    {
        for (std::uint64_t u = 0; u < units; ++u)
            ASSERT_EQ(out.at(u), marker) << "unit " << u;
    }
};

/**
 * Pool of three equivalent variants; the bad one profiles fastest, so
 * only a guard strike can keep it from winning the selection.
 */
void
registerBadVariantPool(runtime::Runtime &rt, const std::string &sig,
                       float marker)
{
    rt.removeKernel(sig);
    rt.addKernel(sig, floatKernel("v-good-slow", marker, 4000));
    rt.addKernel(sig, floatKernel("v-bad", marker, 100));
    rt.addKernel(sig, floatKernel("v-good", marker, 1000));
    rt.setKernelInfo(sig, floatInfo(sig));
}

} // namespace

// ---- Buffer checks -----------------------------------------------------

TEST(GuardUnit, ComparatorToleratesFloatNoiseOnly)
{
    VariantGuard g; // absTol 1e-6, relTol 1e-4
    kdp::Buffer<float> ref(8), cand(8);
    ref.fill(1.0f);
    cand.fill(1.0f);
    EXPECT_TRUE(g.outputsMatch(ref, cand));

    // Reordered-reduction-sized noise passes; a real wrong value
    // does not.
    cand.at(0) = 1.00005f;
    EXPECT_TRUE(g.outputsMatch(ref, cand));
    cand.at(0) = 1.01f;
    EXPECT_FALSE(g.outputsMatch(ref, cand));

    // Identical NaN poisoning compares equal here: flagging it is
    // the NaN screen's job, not the comparator's.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    ref.at(3) = nan;
    cand.at(0) = 1.0f;
    EXPECT_FALSE(g.outputsMatch(ref, cand));
    cand.at(3) = nan;
    EXPECT_TRUE(g.outputsMatch(ref, cand));
}

TEST(GuardUnit, ComparatorIsExactForIntsAndRejectsShapeMismatch)
{
    VariantGuard g;
    kdp::Buffer<std::int32_t> a(8), b(8);
    a.fill(42);
    b.fill(42);
    EXPECT_TRUE(g.outputsMatch(a, b));
    b.at(7) = 43;
    EXPECT_FALSE(g.outputsMatch(a, b));

    // Different element types or data sizes never match.
    kdp::Buffer<float> f(8);
    EXPECT_FALSE(g.outputsMatch(a, f));
    kdp::Buffer<std::int32_t> shorter(7);
    EXPECT_FALSE(g.outputsMatch(a, shorter));

    // A padded clone still matches its origin: only the data region
    // is compared, not the redzone.
    b.at(7) = 42;
    auto padded = b.clonePadded(4);
    VariantGuard::paintRedzone(*padded);
    EXPECT_TRUE(g.outputsMatch(a, *padded));
}

TEST(GuardUnit, RedzoneCanaryCatchesOutOfBoundsBytes)
{
    kdp::Buffer<std::int32_t> b(16);
    b.fill(5);
    auto padded = b.clonePadded(8);
    EXPECT_EQ(padded->size(), 24u);
    EXPECT_EQ(padded->redzone(), 8u);
    EXPECT_EQ(padded->dataElems(), 16u);

    VariantGuard::paintRedzone(*padded);
    EXPECT_TRUE(VariantGuard::redzoneIntact(*padded));
    // Painting leaves the data region alone.
    EXPECT_EQ(static_cast<kdp::Buffer<std::int32_t> &>(*padded).at(3), 5);

    // One byte past the data region trips the canary.
    auto *bytes = static_cast<unsigned char *>(padded->rawData());
    bytes[padded->dataElems() * padded->elemSize()] ^= 0xff;
    EXPECT_FALSE(VariantGuard::redzoneIntact(*padded));

    // A buffer without a redzone is trivially intact.
    EXPECT_TRUE(VariantGuard::redzoneIntact(b));
}

TEST(GuardUnit, NanInfScreenCoversFloatDataOnly)
{
    kdp::Buffer<float> f(8);
    EXPECT_FALSE(VariantGuard::hasNanOrInf(f));
    f.at(2) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(VariantGuard::hasNanOrInf(f));
    f.at(2) = 0.0f;
    f.at(5) = -std::numeric_limits<float>::infinity();
    EXPECT_TRUE(VariantGuard::hasNanOrInf(f));

    // Integer buffers never report poisoning (every bit pattern is a
    // value).
    kdp::Buffer<std::int32_t> i(8);
    i.fill(-1);
    EXPECT_FALSE(VariantGuard::hasNanOrInf(i));

    // Poison in the redzone is not a data-region finding; the canary
    // check owns that territory.
    kdp::Buffer<float> src(4);
    auto padded = src.clonePadded(4);
    auto *vals = static_cast<float *>(padded->rawData());
    vals[5] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(VariantGuard::hasNanOrInf(*padded));
}

// ---- Ledger and blacklist ----------------------------------------------

TEST(GuardUnit, StrikesAccumulateAndBlacklistOnceAtTheLimit)
{
    GuardConfig cfg;
    cfg.enabled = true;
    cfg.strikeLimit = 2;
    VariantGuard g(cfg);

    std::vector<std::string> fired;
    g.setBlacklistObserver([&](const std::string &sig,
                               const std::string &variant,
                               const std::string &reason) {
        fired.push_back(sig + "/" + variant + "/" + reason);
    });

    EXPECT_FALSE(g.strike("k", "v", CheckKind::Mismatch));
    EXPECT_FALSE(g.isBlacklisted("k", "v"));
    EXPECT_TRUE(fired.empty());
    g.pass("k", "w");

    // The second strike crosses the limit: blacklisted, observer
    // fires exactly once, on the transition.
    EXPECT_TRUE(g.strike("k", "v", CheckKind::Redzone));
    EXPECT_TRUE(g.isBlacklisted("k", "v"));
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], "k/v/redzone");

    // Further strikes keep counting but never re-fire.
    EXPECT_FALSE(g.strike("k", "v", CheckKind::NanInf));
    EXPECT_EQ(fired.size(), 1u);

    const auto h = g.health("k", "v");
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->strikes, 3u);
    EXPECT_EQ(h->mismatches, 1u);
    EXPECT_EQ(h->redzones, 1u);
    EXPECT_EQ(h->nans, 1u);
    EXPECT_TRUE(h->blacklisted);
    EXPECT_EQ(h->lastReason, "nan");
    const auto w = g.health("k", "w");
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->passes, 1u);

    EXPECT_EQ(g.checkCount(CheckKind::Mismatch), 1u);
    EXPECT_EQ(g.checkCount(CheckKind::Redzone), 1u);
    EXPECT_EQ(g.checkCount(CheckKind::NanInf), 1u);
    EXPECT_EQ(g.checkCount(CheckKind::Watchdog), 0u);
    EXPECT_EQ(g.blacklistCount(), 1u);

    // Seeded entries (from a loaded store) exclude but are neither
    // counted as strike blacklistings nor echoed to the observer.
    g.blacklist("k2", "x", "watchdog");
    EXPECT_TRUE(g.isBlacklisted("k2", "x"));
    EXPECT_EQ(g.blacklistCount(), 1u);
    EXPECT_EQ(fired.size(), 1u);
}

// ---- Runtime validation, one test per check ----------------------------

namespace {

/**
 * Shared scenario: a pool whose fastest variant carries @p kind.  The
 * guard must strike it with @p check, select the fastest survivor,
 * keep the output ground-truth correct, blacklist the offender
 * (strikeLimit 1), and exclude it from the next launch -- with the
 * detection reconciling 1:1 against the injector's log.
 */
void
runBadVariantCase(VariantFaultKind kind, const std::string &check)
{
    FaultInjector faults;
    sim::CpuDevice dev;
    dev.setFaultInjector(&faults);
    runtime::Runtime rt(dev, guardedConfig(1));
    registerBadVariantPool(rt, "k", 7.0f);
    faults.setVariantFault("v-bad", kind);

    GProbe p("k", 2048);
    runtime::LaunchReport report;
    const auto st = rt.launch("k", p.units, p.args, guardedOpt(), report);
    ASSERT_TRUE(st.ok()) << st.toString();

    // Without the guard the bad variant would have won on speed.
    EXPECT_EQ(report.selectedName, "v-good");
    ASSERT_EQ(report.guardEvents.size(), 1u);
    EXPECT_EQ(report.guardEvents[0].variant, "v-bad");
    EXPECT_EQ(report.guardEvents[0].check, check);
    EXPECT_EQ(report.guardExcluded, 0u);
    p.expectGroundTruth(7.0f);

    EXPECT_TRUE(rt.guard().isBlacklisted("k", "v-bad"));
    const auto h = rt.guard().health("k", "v-bad");
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->strikes, 1u);
    EXPECT_EQ(h->lastReason, check);

    // Exactly one fault application was logged, of the right kind.
    EXPECT_EQ(faults.variantTotal(), 1u);
    EXPECT_EQ(faults.variantCount(kind), 1u);

    // The next profiled launch excludes the offender up front; the
    // injector never sees it again.
    p.out.fill(-1.0f);
    ASSERT_TRUE(rt.launch("k", p.units, p.args, guardedOpt(), report)
                    .ok());
    EXPECT_EQ(report.guardExcluded, 1u);
    EXPECT_TRUE(report.guardEvents.empty());
    EXPECT_EQ(report.selectedName, "v-good");
    EXPECT_EQ(faults.variantTotal(), 1u);
    p.expectGroundTruth(7.0f);
}

} // namespace

TEST(RuntimeGuard, CorruptOutputCaughtByReferenceCrossCheck)
{
    runBadVariantCase(VariantFaultKind::CorruptOutput, "mismatch");
}

TEST(RuntimeGuard, OobWriteCaughtByCanaryRedzone)
{
    runBadVariantCase(VariantFaultKind::OobWrite, "redzone");
}

TEST(RuntimeGuard, NanOutputCaughtByPoisonScreen)
{
    runBadVariantCase(VariantFaultKind::NanOutput, "nan");
}

TEST(RuntimeGuard, KernelHangCaughtByWatchdog)
{
    runBadVariantCase(VariantFaultKind::KernelHang, "watchdog");
}

TEST(RuntimeGuard, StrikeLimitToleratesFirstOffense)
{
    FaultInjector faults;
    sim::CpuDevice dev;
    dev.setFaultInjector(&faults);
    runtime::Runtime rt(dev, guardedConfig(2));
    registerBadVariantPool(rt, "k", 7.0f);
    faults.setVariantFault("v-bad", VariantFaultKind::CorruptOutput);

    unsigned fired = 0;
    rt.guard().setBlacklistObserver(
        [&](const std::string &, const std::string &,
            const std::string &) { fired++; });

    // First offense: struck and excluded from this selection, but
    // not yet blacklisted.
    GProbe p("k", 2048);
    runtime::LaunchReport report;
    ASSERT_TRUE(rt.launch("k", p.units, p.args, guardedOpt(), report)
                    .ok());
    ASSERT_EQ(report.guardEvents.size(), 1u);
    EXPECT_FALSE(rt.guard().isBlacklisted("k", "v-bad"));
    EXPECT_EQ(fired, 0u);
    p.expectGroundTruth(7.0f);

    // Second offense (the fault is persistent): blacklisted.
    p.out.fill(-1.0f);
    ASSERT_TRUE(rt.launch("k", p.units, p.args, guardedOpt(), report)
                    .ok());
    EXPECT_TRUE(rt.guard().isBlacklisted("k", "v-bad"));
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(faults.variantCount(VariantFaultKind::CorruptOutput), 2u);
    p.expectGroundTruth(7.0f);

    // Third launch: excluded without executing.
    p.out.fill(-1.0f);
    ASSERT_TRUE(rt.launch("k", p.units, p.args, guardedOpt(), report)
                    .ok());
    EXPECT_EQ(report.guardExcluded, 1u);
    EXPECT_EQ(faults.variantCount(VariantFaultKind::CorruptOutput), 2u);
    p.expectGroundTruth(7.0f);
}

TEST(RuntimeGuard, HybridHangRepairsTheDefaultSlice)
{
    // In hybrid profiling variant 0 writes units [0, slice) of the
    // real output.  When it hangs, those units were never produced;
    // the winner must re-execute them or the launch is silently
    // incomplete.
    FaultInjector faults;
    sim::CpuDevice dev;
    dev.setFaultInjector(&faults);
    runtime::Runtime rt(dev, guardedConfig(1));
    rt.removeKernel("k");
    rt.addKernel("k", floatKernel("v-hang", 7.0f, 100));
    rt.addKernel("k", floatKernel("v-good", 7.0f, 1000));
    rt.setKernelInfo("k", floatInfo("k"));
    faults.setVariantFault("v-hang", VariantFaultKind::KernelHang);

    GProbe p("k", 2048);
    runtime::LaunchReport report;
    const auto st = rt.launch(
        "k", p.units, p.args,
        guardedOpt(runtime::ProfilingMode::Hybrid), report);
    ASSERT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(report.selectedName, "v-good");
    ASSERT_EQ(report.guardEvents.size(), 1u);
    EXPECT_EQ(report.guardEvents[0].check, "watchdog");
    EXPECT_EQ(report.guardRepairs, 1u);
    p.expectGroundTruth(7.0f);
}

TEST(RuntimeGuard, FullyModeWatchdogRepairsTheHungSlice)
{
    // Fully-productive profiling has no sandboxes, so only the
    // watchdog covers it -- and a hung variant's slice of the real
    // output must be re-executed by the winner.
    FaultInjector faults;
    sim::CpuDevice dev;
    dev.setFaultInjector(&faults);
    runtime::Runtime rt(dev, guardedConfig(1));
    rt.removeKernel("k");
    rt.addKernel("k", floatKernel("v-good-slow", 7.0f, 4000));
    rt.addKernel("k", floatKernel("v-hang", 7.0f, 100));
    rt.addKernel("k", floatKernel("v-good", 7.0f, 1000));
    rt.setKernelInfo("k", floatInfo("k"));
    faults.setVariantFault("v-hang", VariantFaultKind::KernelHang);

    GProbe p("k", 2048);
    runtime::LaunchReport report;
    const auto st = rt.launch(
        "k", p.units, p.args,
        guardedOpt(runtime::ProfilingMode::Fully), report);
    ASSERT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(report.selectedName, "v-good");
    ASSERT_EQ(report.guardEvents.size(), 1u);
    EXPECT_EQ(report.guardEvents[0].variant, "v-hang");
    EXPECT_EQ(report.guardEvents[0].check, "watchdog");
    EXPECT_EQ(report.guardRepairs, 1u);
    p.expectGroundTruth(7.0f);
}

TEST(RuntimeGuard, AllVariantsFailingValidationIsDataLoss)
{
    FaultInjector faults;
    sim::CpuDevice dev;
    dev.setFaultInjector(&faults);
    runtime::Runtime rt(dev, guardedConfig(1));
    rt.removeKernel("k");
    rt.addKernel("k", floatKernel("v-nan", 7.0f, 100));
    rt.addKernel("k", floatKernel("v-hang", 7.0f, 200));
    rt.setKernelInfo("k", floatInfo("k"));
    faults.setVariantFault("v-nan", VariantFaultKind::NanOutput);
    faults.setVariantFault("v-hang", VariantFaultKind::KernelHang);

    GProbe p("k", 2048);
    runtime::LaunchReport report;
    const auto st = rt.launch("k", p.units, p.args, guardedOpt(), report);
    EXPECT_EQ(st.code(), support::StatusCode::DataLoss);
    EXPECT_NE(st.message().find("guard"), std::string::npos);
    // No untrusted output leaked into the real buffer.
    for (std::uint64_t u = 0; u < p.units; ++u)
        ASSERT_EQ(p.out.at(u), -1.0f);

    // Both struck out (strikeLimit 1): the pool is now empty.
    const auto again =
        rt.launch("k", p.units, p.args, guardedOpt(), report);
    EXPECT_EQ(again.code(), support::StatusCode::FailedPrecondition);
    EXPECT_NE(again.message().find("blacklisted"), std::string::npos);
}

TEST(RuntimeGuard, ImportSelectionRejectsBlacklistedVariant)
{
    sim::CpuDevice dev;
    runtime::Runtime rt(dev, guardedConfig(1));
    registerBadVariantPool(rt, "k", 7.0f);
    rt.guard().blacklist("k", "v-bad", "mismatch");

    const auto st = rt.tryImportSelection("k", 1); // v-bad
    EXPECT_EQ(st.code(), support::StatusCode::FailedPrecondition);
    EXPECT_FALSE(rt.cachedSelection("k").has_value());
    EXPECT_TRUE(rt.tryImportSelection("k", 2).ok()); // v-good
}

// ---- Service-level flows -----------------------------------------------

namespace {

/** Flags recording which bad variants ever executed. */
struct BadRan
{
    std::atomic<bool> corrupt{false};
    std::atomic<bool> oob{false};
    std::atomic<bool> hang{false};

    bool any() const { return corrupt || oob || hang; }
};

/**
 * The acceptance-storm pool: two healthy variants bracket a
 * corrupt-output, an out-of-bounds-writing, and a hanging variant,
 * all nominally writing the same marker.  Every bad variant profiles
 * faster than the best healthy one.
 */
void
registerStormPool(runtime::Runtime &rt, const std::string &sig,
                  float marker, BadRan *ran)
{
    rt.removeKernel(sig);
    rt.addKernel(sig, floatKernel("v-good-slow", marker, 4000));
    rt.addKernel(sig, floatKernel("v-corrupt", marker, 100,
                                  ran ? &ran->corrupt : nullptr));
    rt.addKernel(sig, floatKernel("v-oob", marker, 200,
                                  ran ? &ran->oob : nullptr));
    rt.addKernel(sig, floatKernel("v-hang", marker, 300,
                                  ran ? &ran->hang : nullptr));
    rt.addKernel(sig, floatKernel("v-good", marker, 1000));
    rt.setKernelInfo(sig, floatInfo(sig));
}

Job
makeStormJob(GProbe &p, float marker, BadRan *ran)
{
    Job job;
    job.signature = p.sig;
    job.units = p.units;
    job.args = p.args;
    job.opt = guardedOpt();
    job.ensureRegistered = [&p, marker, ran](runtime::Runtime &rt) {
        registerStormPool(rt, p.sig, marker, ran);
    };
    return job;
}

ServiceConfig
guardedServiceConfig()
{
    ServiceConfig cfg;
    cfg.runtime.guard.enabled = true;
    cfg.runtime.guard.strikeLimit = 1;
    return cfg;
}

} // namespace

TEST(ServiceGuard, BlacklistedStoredWinnerIsDemotedToAMiss)
{
    store::SelectionStore store;
    DispatchService svc(store, guardedServiceConfig());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    const std::string fp = svc.device(0).fingerprint();
    svc.start();

    // The restart/peer-worker scenario: a valid record whose winner
    // was blacklisted after the record was written (blacklisting
    // before the record exists skips the invalidation sweep).
    store.blacklistVariant("k", "v-bad", fp, "mismatch");
    runtime::LaunchReport fake;
    fake.signature = "k";
    fake.profiled = true;
    fake.totalUnits = 2048;
    fake.selected = 1;
    fake.selectedName = "v-bad";
    runtime::VariantProfile slow;
    slow.name = "v-good-slow";
    slow.metric = 4000;
    slow.units = 256;
    runtime::VariantProfile bad;
    bad.name = "v-bad";
    bad.metric = 100;
    bad.units = 256;
    fake.profiles = {slow, bad};
    store.recordProfile(fp, fake);
    ASSERT_TRUE(store.lookup("k", fp, 2048).has_value());

    GProbe p("k", 2048);
    Job job;
    job.signature = "k";
    job.units = p.units;
    job.args = p.args;
    job.opt = guardedOpt();
    job.ensureRegistered = [&p](runtime::Runtime &rt) {
        rt.removeKernel("k");
        rt.addKernel("k", floatKernel("v-good-slow", 7.0f, 4000));
        rt.addKernel("k", floatKernel("v-bad", 7.0f, 100));
        rt.setKernelInfo("k", floatInfo("k"));
    };
    JobHandle h = svc.submit(std::move(job));
    const JobResult r = h.result();
    ASSERT_TRUE(r.ok()) << r.status.toString();

    // The poisoned warm start was refused; the guard (seeded from
    // the store) left a single healthy variant, which ran plain.
    EXPECT_FALSE(r.warmStart);
    EXPECT_EQ(r.report.selectedName, "v-good-slow");
    EXPECT_EQ(svc.metrics().counterValue("guard.blocked_warmstart"), 1u);
    p.expectGroundTruth(7.0f);
    svc.stop();
}

TEST(ServiceGuard, AcceptanceStormQuarantinesExactlyTheBadVariants)
{
    // Scripted persistent variant faults: the same three bad variants
    // misbehave in every pool.
    FaultInjector faults;
    faults.setVariantFault("v-corrupt", VariantFaultKind::CorruptOutput);
    faults.setVariantFault("v-oob", VariantFaultKind::OobWrite);
    faults.setVariantFault("v-hang", VariantFaultKind::KernelHang);

    store::SelectionStore store;
    DispatchService svc(store, guardedServiceConfig());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    const std::string fp = svc.device(0).fingerprint();
    svc.start();

    constexpr unsigned N = 16;
    constexpr std::uint64_t units = 2048;
    std::vector<std::unique_ptr<GProbe>> probes;
    std::vector<JobHandle> handles;
    for (unsigned i = 0; i < N; ++i) {
        const float marker = static_cast<float>(10 + i % 4);
        probes.push_back(std::make_unique<GProbe>(
            "s" + std::to_string(i % 4), units));
        handles.push_back(
            svc.submit(makeStormJob(*probes.back(), marker, nullptr)));
        handles.back().wait();
    }
    svc.drain();

    // 100% completion with ground-truth output.  The first job of
    // each signature profiles and strikes all three bad variants in
    // one pass; every later job warm-starts on the stored winner.
    for (unsigned i = 0; i < N; ++i) {
        const JobResult &r = handles[i].result();
        ASSERT_TRUE(r.ok()) << "job " << i << ": "
                            << r.status.toString();
        if (i < 4) {
            EXPECT_TRUE(r.report.profiled);
            EXPECT_FALSE(r.warmStart);
            EXPECT_EQ(r.report.guardEvents.size(), 3u);
            EXPECT_EQ(r.report.selectedName, "v-good");
        } else {
            EXPECT_TRUE(r.warmStart);
        }
        probes[i]->expectGroundTruth(static_cast<float>(10 + i % 4));
    }
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("jobs.completed"), std::uint64_t{N});
    EXPECT_EQ(m.counterValue("jobs.failed"), 0u);

    // Guard counters reconcile 1:1 against the injector's log of
    // applied variant faults: one detection per application.
    EXPECT_EQ(m.counterValue("guard.mismatch"),
              faults.variantCount(VariantFaultKind::CorruptOutput));
    EXPECT_EQ(m.counterValue("guard.redzone"),
              faults.variantCount(VariantFaultKind::OobWrite));
    EXPECT_EQ(m.counterValue("guard.watchdog"),
              faults.variantCount(VariantFaultKind::KernelHang));
    EXPECT_EQ(m.counterValue("guard.nan"),
              faults.variantCount(VariantFaultKind::NanOutput));
    EXPECT_EQ(m.counterValue("guard.mismatch"), 4u);
    EXPECT_EQ(m.counterValue("guard.redzone"), 4u);
    EXPECT_EQ(m.counterValue("guard.watchdog"), 4u);
    EXPECT_EQ(m.counterValue("guard.nan"), 0u);
    EXPECT_EQ(faults.variantTotal(), 12u);
    EXPECT_EQ(m.counterValue("guard.repair"), 0u); // swap discards

    // Exactly the three bad variants of each signature are
    // blacklisted, with the check that caught them as the reason.
    EXPECT_EQ(m.counterValue("guard.blacklist"), 12u);
    ASSERT_EQ(store.blacklistSize(), 12u);
    for (const auto &e : store.blacklistEntries()) {
        EXPECT_EQ(e.device, fp);
        EXPECT_EQ(e.strikes, 1u);
        if (e.variant == "v-corrupt") {
            EXPECT_EQ(e.reason, "mismatch");
        } else if (e.variant == "v-oob") {
            EXPECT_EQ(e.reason, "redzone");
        } else if (e.variant == "v-hang") {
            EXPECT_EQ(e.reason, "watchdog");
        } else {
            ADD_FAILURE() << "unexpected blacklisted variant "
                          << e.variant;
        }
    }
    svc.stop();

    // ---- Restart from the saved store ----------------------------------
    const std::string path =
        ::testing::TempDir() + "guard_storm_store.json";
    ASSERT_TRUE(store.saveFile(path).ok());
    store::SelectionStore store2;
    ASSERT_TRUE(store2.loadFile(path).ok());
    ASSERT_EQ(store2.blacklistSize(), 12u);

    // No injector on the restarted service: the loaded blacklist
    // alone must keep the bad variants from ever being scheduled,
    // which the execution flags prove.
    DispatchService svc2(store2, guardedServiceConfig());
    svc2.addDevice(std::make_unique<sim::CpuDevice>());
    svc2.start();
    BadRan ran;

    // A different size bucket misses the store and re-profiles: the
    // guard, seeded from the loaded blacklist, excludes all three
    // bad variants up front.
    std::vector<std::unique_ptr<GProbe>> probes2;
    for (unsigned i = 0; i < 4; ++i) {
        const float marker = static_cast<float>(10 + i);
        probes2.push_back(std::make_unique<GProbe>(
            "s" + std::to_string(i), 5000));
        JobHandle h =
            svc2.submit(makeStormJob(*probes2.back(), marker, &ran));
        const JobResult r = h.result();
        ASSERT_TRUE(r.ok()) << r.status.toString();
        EXPECT_TRUE(r.report.profiled);
        EXPECT_EQ(r.report.guardExcluded, 3u);
        EXPECT_TRUE(r.report.guardEvents.empty());
        EXPECT_EQ(r.report.selectedName, "v-good");
        probes2[i]->expectGroundTruth(marker);
    }

    // The original size bucket warm-starts on the stored winner.
    GProbe warm("s0", units);
    JobHandle h = svc2.submit(makeStormJob(warm, 10.0f, &ran));
    const JobResult r = h.result();
    ASSERT_TRUE(r.ok()) << r.status.toString();
    EXPECT_TRUE(r.warmStart);
    EXPECT_EQ(r.report.selectedName, "v-good");
    warm.expectGroundTruth(10.0f);

    EXPECT_FALSE(ran.any());
    EXPECT_EQ(svc2.metrics().counterValue("guard.excluded"), 12u);
    EXPECT_EQ(svc2.metrics().counterValue("guard.blacklist"), 0u);
    svc2.stop();

    // A bare restarted Runtime seeded from the loaded store refuses
    // to import a blacklisted selection outright.
    sim::CpuDevice dev2;
    runtime::Runtime rt2(dev2, guardedConfig(1));
    registerStormPool(rt2, "s0", 10.0f, nullptr);
    for (const auto &[variant, reason] :
         store2.blacklistedVariants("s0", dev2.fingerprint())) {
        rt2.guard().blacklist("s0", variant, reason);
    }
    EXPECT_EQ(rt2.tryImportSelection("s0", 1).code(), // v-corrupt
              support::StatusCode::FailedPrecondition);
    EXPECT_TRUE(rt2.tryImportSelection("s0", 4).ok()); // v-good
}
