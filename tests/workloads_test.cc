/**
 * @file
 * Correctness tests for every workload kernel variant: each variant,
 * run standalone over the whole workload, must reproduce the host
 * reference output.  (Iterations are clamped to 1: correctness does
 * not need the iterative timing behaviour.)
 */
#include <functional>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "workloads/cutcp.hh"
#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/histogram.hh"
#include "workloads/kmeans.hh"
#include "workloads/particlefilter.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

using namespace dysel::workloads;

namespace {

struct Case
{
    std::string name;
    std::function<Workload()> make;
    bool gpu; ///< which device family the case targets
};

std::vector<Case>
cases()
{
    return {
        {"sgemm-vector-cpu", [] { return makeSgemmVectorCpu(); }, false},
        {"sgemm-lc-cpu", [] { return makeSgemmLcCpu(128, 128, 128); },
         false},
        {"sgemm-mixed-cpu", [] { return makeSgemmMixed(); }, false},
        {"sgemm-mixed-gpu", [] { return makeSgemmMixed(); }, true},
        {"spmv-csr-lc-random",
         [] { return makeSpmvCsrCpuLc(SpmvInput::Random); }, false},
        {"spmv-csr-inputdep-cpu-random",
         [] { return makeSpmvCsrCpuInputDep(SpmvInput::Random); }, false},
        {"spmv-csr-inputdep-gpu-random",
         [] { return makeSpmvCsrGpuInputDep(SpmvInput::Random); }, true},
        {"spmv-csr-placement-gpu",
         [] { return makeSpmvCsrGpuPlacement(); }, true},
        {"spmv-jds-vector-cpu", [] { return makeSpmvJdsVectorCpu(); },
         false},
        {"spmv-jds-mixed-gpu", [] { return makeSpmvJdsGpuMixed(); },
         true},
        {"stencil-lc-cpu", [] { return makeStencilLcCpu(); }, false},
        {"stencil-mixed-cpu", [] { return makeStencilMixed(); }, false},
        {"stencil-mixed-gpu", [] { return makeStencilMixed(); }, true},
        {"kmeans-lc-cpu", [] { return makeKmeansLcCpu(); }, false},
        {"cutcp-lc-cpu", [] { return makeCutcpLcCpu(6); }, false},
        {"cutcp-mixed-gpu", [] { return makeCutcpMixed(); }, true},
        {"particlefilter-gpu", [] { return makeParticleFilterGpu(); },
         true},
        {"histogram-cpu", [] { return makeHistogram(); }, false},
        {"histogram-gpu", [] { return makeHistogram(); }, true},
    };
}

class WorkloadCorrectness : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(WorkloadCorrectness, EveryVariantMatchesReference)
{
    const Case &c = GetParam();
    Workload w = c.make();
    w.iterations = 1;
    const DeviceFactory factory = c.gpu ? gpuFactory() : cpuFactory();
    ASSERT_GT(w.variants.size(), 0u);
    for (std::size_t i = 0; i < w.variants.size(); ++i) {
        const VariantRun run = runSingleVariant(factory, w, i);
        EXPECT_TRUE(run.ok) << c.name << " variant " << run.name
                            << " produced wrong output";
        EXPECT_GT(run.elapsed, 0u);
    }
}

TEST_P(WorkloadCorrectness, MetadataIsConsistent)
{
    const Case &c = GetParam();
    Workload w = c.make();
    EXPECT_FALSE(w.signature.empty());
    EXPECT_GT(w.units, 0u);
    EXPECT_FALSE(w.info.loops.empty());
    EXPECT_FALSE(w.info.outputArgs.empty());
    if (!w.schedules.empty())
        EXPECT_EQ(w.schedules.size(), w.variants.size());
    for (const auto &v : w.variants) {
        EXPECT_TRUE(v.fn != nullptr);
        EXPECT_GT(v.waFactor, 0u);
        EXPECT_GT(v.groupSize, 0u);
        EXPECT_FALSE(v.sandboxIndex.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadCorrectness, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string name = info.param.name;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });
