/**
 * @file
 * Fault-tolerance tests: the seeded fault injector itself, how the
 * runtime surfaces injected device faults as typed Statuses, and the
 * dispatch service's recovery machinery -- retry with re-routing and
 * virtual backoff, per-job deadlines, the per-device circuit breaker,
 * selection quarantine on warm-start failures, and the acceptance
 * storm: ~10% injected launch failures plus one permanently hung
 * device, with 100% job completion, ground-truth outputs, and metrics
 * that reconcile exactly against the injectors' event logs.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"

using namespace dysel;
using namespace dysel::serve;
using sim::FaultConfig;
using sim::FaultInjector;
using sim::FaultKind;

namespace {

constexpr std::uint32_t laneCount = 8;

/** Marker kernel as in runtime/service tests: out[unit] = marker. */
kdp::KernelVariant
markerKernel(const char *name, std::int32_t marker,
             std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [marker, flops_per_unit](kdp::GroupCtx &g,
                                    const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

/**
 * Pool whose two variants write the SAME marker at different speeds:
 * any selection, retry, or fallback produces the identical output, so
 * fault-tolerant runs can be compared against fault-free ground truth
 * unit by unit.
 */
void
registerEquivalentPool(runtime::Runtime &rt, const std::string &sig,
                       std::int32_t marker)
{
    rt.removeKernel(sig);
    rt.addKernel(sig, markerKernel("v-slow", marker, 4000));
    rt.addKernel(sig, markerKernel("v-fast", marker, 100));
    rt.setKernelInfo(sig, regularInfo(sig));
}

/** One job's buffers and args. */
struct Probe
{
    std::string sig;
    std::uint64_t units;
    kdp::Buffer<std::int32_t> out;
    kdp::KernelArgs args;

    Probe(std::string s, std::uint64_t n)
        : sig(std::move(s)), units(n),
          out(n, kdp::MemSpace::Global, "out")
    {
        out.fill(-1);
        args.add(out).add(static_cast<std::int64_t>(n));
    }
};

Job
makeJob(Probe &p, std::int32_t marker)
{
    Job job;
    job.signature = p.sig;
    job.units = p.units;
    job.args = p.args;
    job.ensureRegistered = [&p, marker](runtime::Runtime &rt) {
        registerEquivalentPool(rt, p.sig, marker);
    };
    return job;
}

/**
 * Submit and block; returns a copy because the result reference is
 * only valid while the handle is alive.
 */
JobResult
submitAndWait(DispatchService &svc, Job job)
{
    JobHandle h = svc.submit(std::move(job));
    return h.result();
}

/** Single-runtime fixture with an attached injector. */
struct RuntimeFixture
{
    FaultInjector faults;
    sim::CpuDevice dev;
    runtime::Runtime rt{dev};
    Probe probe{"k", 2048};

    explicit RuntimeFixture(FaultConfig cfg = FaultConfig())
        : faults(cfg)
    {
        dev.setFaultInjector(&faults);
        registerEquivalentPool(rt, "k", 3);
    }

    support::Status launch(runtime::LaunchReport &report)
    {
        return rt.launch("k", probe.units, probe.args,
                         runtime::LaunchOptions(), report);
    }
};

} // namespace

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultConfig cfg;
    cfg.launchFailProb = 0.2;
    cfg.latencySpikeProb = 0.1;
    cfg.hangProb = 0.05;
    cfg.seed = 42;

    FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(a.decide("d", "v", i), b.decide("d", "v", i));
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.aborts(), b.aborts());
    EXPECT_GT(a.count(FaultKind::LaunchFail), 0u);
    EXPECT_GT(a.count(FaultKind::LatencySpike), 0u);
    EXPECT_GT(a.count(FaultKind::Hang), 0u);
    // The log and the per-kind counters agree.
    EXPECT_EQ(a.events().size(), a.total());
}

TEST(FaultInjector, ScriptedFaultsPrecedeRandomDraw)
{
    FaultInjector inj; // all probabilities zero
    inj.failNext(2);
    inj.hangNext();
    inj.spikeNext();
    EXPECT_EQ(inj.decide("d", "v", 0), FaultKind::LaunchFail);
    EXPECT_EQ(inj.decide("d", "v", 1), FaultKind::LaunchFail);
    EXPECT_EQ(inj.decide("d", "v", 2), FaultKind::Hang);
    EXPECT_EQ(inj.decide("d", "v", 3), FaultKind::LatencySpike);
    EXPECT_EQ(inj.decide("d", "v", 4), FaultKind::None);
    EXPECT_EQ(inj.total(), 4u);
    EXPECT_EQ(inj.aborts(), 3u);
    const auto events = inj.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].kind, FaultKind::LaunchFail);
    EXPECT_EQ(events[2].kind, FaultKind::Hang);
    EXPECT_EQ(events[2].device, "d");
    EXPECT_EQ(events[2].time, 2);
}

TEST(RuntimeFault, LaunchFailSurfacesAsUnavailable)
{
    RuntimeFixture f;
    f.faults.failNext();

    runtime::LaunchReport report;
    const auto st = f.launch(report);
    EXPECT_EQ(st.code(), support::StatusCode::Unavailable);
    EXPECT_NE(st.message().find("launch failure"), std::string::npos);

    // The device survives: the next launch runs to completion and
    // covers the whole workload.
    const auto again = f.launch(report);
    EXPECT_TRUE(again.ok()) << again.toString();
    for (std::uint64_t u = 0; u < f.probe.units; ++u)
        ASSERT_EQ(f.probe.out.at(u), 3);
}

TEST(RuntimeFault, HangSurfacesAsDeadlineExceededAndStallsClock)
{
    RuntimeFixture f;
    f.faults.hangNext();

    const sim::TimeNs before = f.dev.now();
    runtime::LaunchReport report;
    const auto st = f.launch(report);
    EXPECT_EQ(st.code(), support::StatusCode::DeadlineExceeded);
    // The hang charges its stall to the device's virtual clock.
    EXPECT_GE(f.dev.now() - before, f.faults.config().hangStallNs);

    EXPECT_TRUE(f.launch(report).ok());
}

TEST(RuntimeFault, LatencySpikeSlowsButCompletesCorrectly)
{
    // Baseline: fault-free elapsed time of the warm (plain) launch.
    RuntimeFixture clean;
    runtime::LaunchReport report;
    ASSERT_TRUE(clean.launch(report).ok()); // profiles + caches
    ASSERT_TRUE(clean.launch(report).ok()); // plain
    const sim::TimeNs plainNs = report.elapsed();

    RuntimeFixture spiked;
    ASSERT_TRUE(spiked.launch(report).ok());
    spiked.faults.spikeNext();
    spiked.probe.out.fill(-1);
    ASSERT_TRUE(spiked.launch(report).ok());
    // Same selection, same output, but stretched work-groups.
    EXPECT_GT(report.elapsed(), plainNs);
    EXPECT_EQ(spiked.faults.count(FaultKind::LatencySpike), 1u);
    for (std::uint64_t u = 0; u < spiked.probe.units; ++u)
        ASSERT_EQ(spiked.probe.out.at(u), 3);
}

TEST(ServiceFault, RetryReroutesToHealthyDevice)
{
    store::SelectionStore store;
    DispatchService svc(store);
    FaultInjector faults; // scripted only
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.start();

    // The first (least-loaded) route lands on device 0, which drops
    // the launch; the retry must exclude it and succeed on device 1.
    faults.failNext();
    Probe p("k", 2048);
    const JobResult r = submitAndWait(svc, makeJob(p, 5));
    EXPECT_TRUE(r.ok()) << r.status.toString();
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.deviceIndex, 1u);
    EXPECT_EQ(r.backoffNs, ServiceConfig().backoffBaseNs);
    for (std::uint64_t u = 0; u < p.units; ++u)
        ASSERT_EQ(p.out.at(u), 5);

    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("recover.retries"), 1u);
    EXPECT_EQ(m.counterValue("jobs.completed"), 1u);
    EXPECT_EQ(m.counterValue("jobs.failed"), 0u);
    svc.stop();
}

TEST(ServiceFault, BackoffDoublesPerAttemptOnSingleDevice)
{
    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.maxAttempts = 4;
    DispatchService svc(store, cfg);
    FaultInjector faults;
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.start();

    // Three scripted failures on the only device: the job keeps
    // coming back to it (the exclusion set resets when every device
    // has failed) with exponentially growing charged backoff.
    faults.failNext(3);
    Probe p("k", 2048);
    const JobResult r = submitAndWait(svc, makeJob(p, 6));
    EXPECT_TRUE(r.ok()) << r.status.toString();
    EXPECT_EQ(r.attempts, 4u);
    // base + 2*base + 4*base after the three failed attempts.
    EXPECT_EQ(r.backoffNs, 7 * cfg.backoffBaseNs);
    EXPECT_EQ(svc.metrics().counterValue("recover.retries"), 3u);
    svc.stop();
}

TEST(ServiceFault, RetriesExhaustedFailsWithLastError)
{
    store::SelectionStore store;
    DispatchService svc(store); // maxAttempts = 3
    FaultInjector faults;
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.start();

    faults.failNext(3);
    Probe p("k", 2048);
    const JobResult r = submitAndWait(svc, makeJob(p, 6));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status.code(), support::StatusCode::Unavailable);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(svc.metrics().counterValue("jobs.failed"), 1u);
    EXPECT_EQ(svc.metrics().counterValue("recover.retries"), 2u);

    // The device is healthy again afterwards.
    Probe ok("k2", 2048);
    EXPECT_TRUE(submitAndWait(svc, makeJob(ok, 6)).ok());
    svc.stop();
}

TEST(ServiceFault, DeadlineBudgetStopsRetrying)
{
    store::SelectionStore store;
    DispatchService svc(store);
    FaultInjector faults;
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.start();

    // The first attempt fails; the retry's backoff alone would blow
    // the (tiny) deadline, so the job gives up as DeadlineExceeded.
    faults.failNext();
    Probe p("k", 2048);
    Job job = makeJob(p, 6);
    job.deadlineNs = 1;
    const JobResult r = submitAndWait(svc, std::move(job));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status.code(), support::StatusCode::DeadlineExceeded);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(svc.metrics().counterValue("recover.timeouts"), 1u);
    EXPECT_EQ(svc.metrics().counterValue("recover.retries"), 0u);
    svc.stop();
}

TEST(ServiceFault, BreakerTripsShedsProbesAndRecovers)
{
    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.affinity = false; // route purely by load / breaker state
    cfg.breakerThreshold = 2;
    cfg.breakerCooldown = 2;
    DispatchService svc(store, cfg);
    FaultInjector faults;
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.start();

    auto runOne = [&](const std::string &sig) {
        Probe p(sig, 2048);
        const JobResult r = submitAndWait(svc, makeJob(p, 8));
        EXPECT_TRUE(r.ok()) << r.status.toString();
        return r.deviceIndex;
    };

    // Jobs A and B land on device 0 first (equal load, lowest index),
    // fail there, and retry onto device 1.  Two consecutive failures
    // trip device 0's breaker.
    faults.failNext(3); // A, B, and later the first probe
    EXPECT_EQ(runOne("a"), 1u);
    EXPECT_EQ(runOne("b"), 1u);
    EXPECT_EQ(svc.metrics().counterValue("breaker.trips"), 1u);

    // While open, routing sheds device 0 for breakerCooldown = 2
    // decisions: jobs C and D go straight to device 1, attempt 1.
    for (const char *sig : {"c", "d"}) {
        Probe p(sig, 2048);
        const JobResult r = submitAndWait(svc, makeJob(p, 8));
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.deviceIndex, 1u);
        EXPECT_EQ(r.attempts, 1u);
    }

    // The cooldown is spent: job E probes device 0, which still
    // fails (third scripted fault) -> the breaker reopens and the
    // job finishes on device 1.
    {
        Probe p("e", 2048);
        const JobResult r = submitAndWait(svc, makeJob(p, 8));
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.deviceIndex, 1u);
        EXPECT_EQ(r.attempts, 2u);
    }
    EXPECT_EQ(svc.metrics().counterValue("breaker.reopens"), 1u);

    // Another cooldown (jobs F, G), then the probe succeeds: closed.
    for (const char *sig : {"f", "g"}) {
        Probe p(sig, 2048);
        EXPECT_EQ(submitAndWait(svc, makeJob(p, 8)).deviceIndex, 1u);
    }
    {
        Probe p("h", 2048);
        const JobResult r = submitAndWait(svc, makeJob(p, 8));
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.deviceIndex, 0u);
        EXPECT_EQ(r.attempts, 1u);
    }
    EXPECT_EQ(svc.metrics().counterValue("breaker.closes"), 1u);
    EXPECT_EQ(svc.metrics().counterValue("breaker.trips"), 1u);
    svc.stop();
}

TEST(ServiceFault, WarmStartFailureQuarantinesStoredSelection)
{
    store::SelectionStore store;
    DispatchService svc(store);
    FaultInjector faults;
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&faults);
    svc.start();

    // Cold job profiles and stores the winner.
    Probe cold("k", 2048);
    ASSERT_TRUE(submitAndWait(svc, makeJob(cold, 9)).ok());
    ASSERT_TRUE(store.lookup("k", svc.device(0).fingerprint(), 2048)
                    .has_value());

    // The warm-started launch is dropped: the stored selection is
    // quarantined and the retry serves the runner-up, warm.
    faults.failNext();
    Probe warm("k", 2048);
    const JobResult r = submitAndWait(svc, makeJob(warm, 9));
    EXPECT_TRUE(r.ok()) << r.status.toString();
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_TRUE(r.warmStart);
    EXPECT_EQ(store.quarantineCount(), 1u);
    EXPECT_EQ(svc.metrics().counterValue("store.quarantine"), 1u);
    for (std::uint64_t u = 0; u < warm.units; ++u)
        ASSERT_EQ(warm.out.at(u), 9);
    svc.stop();
}

namespace {

/** Shared storm driver; @p serial waits per job, else drains. */
void
runStorm(bool serial)
{
    // Device 0 hangs every launch; devices 1 and 2 drop ~10%.
    FaultConfig hungCfg;
    hungCfg.hangProb = 1.0;
    hungCfg.hangStallNs = 1'000'000; // keep virtual stalls cheap
    FaultConfig flakyCfg;
    flakyCfg.launchFailProb = 0.1;
    flakyCfg.seed = 0xbeef;
    FaultInjector hung(hungCfg);
    FaultInjector flaky1(flakyCfg);
    flakyCfg.seed = 0xbeef + 1;
    FaultInjector flaky2(flakyCfg);

    store::SelectionStore store;
    ServiceConfig cfg;
    // Serially the retry schedule is deterministic and five attempts
    // always complete every job; concurrently the interleaving shifts
    // which PRNG draw each attempt sees, so give unlucky jobs room.
    cfg.maxAttempts = serial ? 5 : 8;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.device(0).setFaultInjector(&hung);
    svc.device(1).setFaultInjector(&flaky1);
    svc.device(2).setFaultInjector(&flaky2);
    svc.start();

    constexpr unsigned N = 40;
    constexpr std::uint64_t units = 2048;
    std::vector<std::unique_ptr<Probe>> probes;
    std::vector<JobHandle> handles;
    for (unsigned i = 0; i < N; ++i) {
        const std::int32_t marker =
            static_cast<std::int32_t>(10 + i % 4);
        probes.push_back(std::make_unique<Probe>(
            "s" + std::to_string(i % 4), units));
        handles.push_back(
            svc.submit(makeJob(*probes.back(), marker)));
        if (serial)
            handles.back().wait();
    }
    svc.drain();

    // Serially: 100% completion.  Concurrently a pathologically
    // unlucky job may still exhaust its attempts; such a failure must
    // carry the injected fault's code, never a logic error.  Either
    // way every completed job's output matches the fault-free ground
    // truth unit for unit.
    std::uint64_t completed = 0;
    for (unsigned i = 0; i < N; ++i) {
        const JobResult &r = handles[i].result();
        if (serial)
            ASSERT_TRUE(r.ok()) << "job " << i << ": "
                                << r.status.toString();
        if (!r.ok()) {
            EXPECT_EQ(r.attempts, cfg.maxAttempts);
            EXPECT_TRUE(r.status.code()
                            == support::StatusCode::Unavailable
                        || r.status.code()
                            == support::StatusCode::DeadlineExceeded)
                << r.status.toString();
            continue;
        }
        ++completed;
        const auto marker = static_cast<std::int32_t>(10 + i % 4);
        for (std::uint64_t u = 0; u < units; ++u)
            ASSERT_EQ(probes[i]->out.at(u), marker)
                << "job " << i << " unit " << u;
    }

    // Fault-free ground truth for one representative signature: a
    // clean single-runtime run writes exactly the marker everywhere.
    {
        sim::CpuDevice dev;
        runtime::Runtime rt(dev);
        registerEquivalentPool(rt, "s0", 10);
        Probe ref("s0", units);
        rt.launchKernel("s0", units, ref.args);
        for (std::uint64_t u = 0; u < units; ++u)
            ASSERT_EQ(ref.out.at(u), 10);
    }

    // The metrics reconcile exactly against the injectors' logs:
    // every aborted launch is a failed attempt, and every failed
    // attempt was either retried or failed the job.
    const auto &m = svc.metrics();
    const std::uint64_t aborts =
        hung.aborts() + flaky1.aborts() + flaky2.aborts();
    EXPECT_EQ(m.counterValue("jobs.completed"), completed);
    EXPECT_EQ(m.counterValue("jobs.failed"), N - completed);
    if (serial)
        EXPECT_EQ(completed, std::uint64_t{N});
    EXPECT_EQ(m.counterValue("recover.retries")
                  + m.counterValue("jobs.failed"),
              aborts);
    // Hangs and only hangs surface as attempt timeouts.
    EXPECT_EQ(m.counterValue("recover.timeouts"), hung.aborts());
    // The permanently hung device tripped its breaker and never
    // completed a job.
    EXPECT_GE(m.counterValue("breaker.trips"), 1u);
    const auto devJobs = [](unsigned i) {
        return support::MetricsRegistry::labeled(
            "device.jobs", "device", "dev" + std::to_string(i));
    };
    EXPECT_EQ(m.counterValue(devJobs(0)), 0u);
    EXPECT_GT(m.counterValue(devJobs(1)) + m.counterValue(devJobs(2)),
              0u);
    svc.stop();
}

} // namespace

TEST(ServiceFault, AcceptanceStormSerialDeterministic)
{
    runStorm(true);
}

TEST(ServiceFault, AcceptanceStormConcurrentInvariants)
{
    runStorm(false);
}
