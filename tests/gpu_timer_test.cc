/**
 * @file
 * Tests for the Fig. 7 in-kernel timing protocol.
 */
#include <gtest/gtest.h>

#include "dysel/gpu_timer.hh"

using namespace dysel::runtime;

TEST(GpuTimer, SingleKernelSpan)
{
    GpuTimer t(1, {3});
    EXPECT_EQ(t.selection(), -1);
    t.blockDone(0, 100, 150);
    EXPECT_FALSE(t.kernelDone(0));
    t.blockDone(0, 110, 160);
    t.blockDone(0, 105, 220);
    EXPECT_TRUE(t.kernelDone(0));
    // Span = last end (220) - min start (100).
    EXPECT_EQ(t.span(0), 120u);
    EXPECT_EQ(t.selection(), 0);
}

TEST(GpuTimer, SelectsTheFasterKernel)
{
    GpuTimer t(2, {2, 2});
    t.blockDone(0, 0, 100);
    t.blockDone(0, 10, 200); // kernel 0 span 200
    EXPECT_EQ(t.selection(), 0);
    t.blockDone(1, 300, 350);
    t.blockDone(1, 310, 380); // kernel 1 span 80 < 200
    EXPECT_EQ(t.selection(), 1);
    EXPECT_EQ(t.span(0), 200u);
    EXPECT_EQ(t.span(1), 80u);
    EXPECT_TRUE(t.allDone());
}

TEST(GpuTimer, SlowerLateKernelDoesNotStealSelection)
{
    GpuTimer t(2, {1, 1});
    t.blockDone(0, 0, 50);
    EXPECT_EQ(t.selection(), 0);
    t.blockDone(1, 100, 300);
    EXPECT_EQ(t.selection(), 0); // span 200 does not beat 50
}

TEST(GpuTimer, ExactTieKeepsEarlierSelection)
{
    // Fig. 7 updates the selection only when global_diff strictly
    // improves.
    GpuTimer t(2, {1, 1});
    t.blockDone(0, 0, 100);
    t.blockDone(1, 500, 600); // identical span
    EXPECT_EQ(t.selection(), 0);
}

TEST(GpuTimer, LastBlockUsesGlobalMinStart)
{
    // The last completing block's own start is later than the global
    // minimum; Fig. 7's atomicMin trick still yields the full span.
    GpuTimer t(1, {2});
    t.blockDone(0, 10, 500);  // early starter finishes first
    t.blockDone(0, 400, 450); // late starter is the last block
    EXPECT_EQ(t.span(0), 440u); // 450 - 10, not 450 - 400
}

TEST(GpuTimer, ManyKernelsPickGlobalMinimum)
{
    GpuTimer t(4, {1, 1, 1, 1});
    t.blockDone(0, 0, 400);
    t.blockDone(1, 0, 300);
    t.blockDone(2, 0, 100);
    t.blockDone(3, 0, 200);
    EXPECT_EQ(t.selection(), 2);
    EXPECT_TRUE(t.allDone());
}

TEST(GpuTimerDeath, WrongBlockCountsAreBugs)
{
    GpuTimer t(1, {1});
    t.blockDone(0, 0, 10);
    EXPECT_DEATH(t.blockDone(0, 20, 30), "");
}

TEST(GpuTimerDeath, UnknownKernelId)
{
    GpuTimer t(1, {1});
    EXPECT_DEATH(t.blockDone(5, 0, 10), "");
}

TEST(GpuTimerDeath, SpanBeforeCompletion)
{
    GpuTimer t(1, {2});
    t.blockDone(0, 0, 10);
    EXPECT_DEATH(t.span(0), "");
}
