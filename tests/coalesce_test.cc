/**
 * @file
 * Differential property test for profiling coalescing.
 *
 * The property: coalescing is an execution-schedule optimization,
 * never a semantic one.  The same randomized job stream is run three
 * ways --
 *
 *   (a) serially, coalescing off   -- the ground truth;
 *   (b) concurrently, coalescing off -- how much redundant profiling
 *       contention causes (the kernels yield the CPU mid-launch, so
 *       concurrent cold misses genuinely overlap even on one core);
 *   (c) concurrently, coalescing on.
 *
 * All three must produce byte-identical outputs (the variants write
 * the same unit-indexed values; only their cost differs -- DySel's
 * core invariant that selection changes performance, not results) and
 * equivalent final selection stores (same keys, same winner).  And
 * (c) must profile strictly less than (b) on the duplicated keys:
 * followers ride the leader's record instead of re-profiling.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"
#include "support/rng.hh"

using namespace dysel;
using namespace dysel::serve;

namespace {

constexpr std::uint32_t laneCount = 8;
constexpr std::uint64_t kUnits = 512;
constexpr unsigned kSignatures = 2;
constexpr unsigned kThreads = 8;
constexpr unsigned kJobsPerThread = 4;

/**
 * Schedule-independent kernel: writes 3*u + seed into out[u]
 * regardless of which variant (or which mix of profiling slices)
 * executes each unit, and sleeps a little per group so a concurrent
 * worker gets the CPU mid-launch.
 */
kdp::KernelVariant
yieldingKernel(const char *name, std::int32_t seed,
               std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [seed, flops_per_unit](kdp::GroupCtx &g,
                                  const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        std::this_thread::sleep_for(std::chrono::microseconds(30));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out,
                    u,
                    static_cast<std::int32_t>(3 * u) + seed,
                    lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

std::string
sigOf(unsigned s)
{
    return "dup" + std::to_string(s);
}

/** The randomized stream: [thread][job] -> signature index.  Seeded,
 *  so all three runs replay exactly the same stream. */
std::vector<std::vector<unsigned>>
makeStream()
{
    support::Rng rng(0xd1ff);
    std::vector<std::vector<unsigned>> stream(kThreads);
    for (auto &jobs : stream)
        for (unsigned j = 0; j < kJobsPerThread; ++j)
            jobs.push_back(
                static_cast<unsigned>(rng.nextBelow(kSignatures)));
    return stream;
}

struct RunResult
{
    /** [thread][job] -> the job's full output buffer contents. */
    std::vector<std::vector<std::vector<std::int32_t>>> outputs;
    /** Selection per (signature, bucket) key in the final store. */
    std::map<std::pair<std::string, unsigned>, std::string> selections;
    std::uint64_t profiledLaunches = 0;
    std::uint64_t profiledUnits = 0;
    std::uint64_t coalesceHits = 0;
};

/** Run the stream on a fresh service + store. */
RunResult
runStream(bool concurrent, bool coalesce)
{
    const auto stream = makeStream();

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.coalesce = coalesce;
    cfg.affinity = false; // spread duplicates over all devices
    DispatchService svc(store, cfg);
    for (unsigned d = 0; d < 4; ++d)
        svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([](runtime::Runtime &rt) {
           for (unsigned s = 0; s < kSignatures; ++s) {
               const std::string sig = sigOf(s);
               const auto seed = static_cast<std::int32_t>(s + 1);
               rt.addKernel(sig, yieldingKernel("slow", seed, 4000));
               rt.addKernel(sig, yieldingKernel("fast", seed, 100));
               rt.setKernelInfo(sig, regularInfo(sig));
           }
       }).throwIfError();
    svc.start();

    RunResult res;
    res.outputs.assign(
        kThreads,
        std::vector<std::vector<std::int32_t>>(kJobsPerThread));

    std::uint64_t profiledLaunches = 0, profiledUnits = 0;
    std::mutex mu;
    auto worker = [&](unsigned t) {
        kdp::Buffer<std::int32_t> out(kUnits, kdp::MemSpace::Global,
                                      "dup.out");
        for (unsigned j = 0; j < kJobsPerThread; ++j) {
            out.fill(-1);
            Job job;
            job.signature = sigOf(stream[t][j]);
            job.units = kUnits;
            job.args.add(out).add(static_cast<std::int64_t>(kUnits));
            JobHandle h = svc.submit(std::move(job));
            const JobResult &r = h.result();
            ASSERT_TRUE(r.ok()) << r.status.toString();
            {
                std::lock_guard<std::mutex> lock(mu);
                if (r.report.profiled) {
                    profiledLaunches++;
                    profiledUnits += r.report.profiledUnits;
                }
            }
            auto &slot = res.outputs[t][j];
            slot.assign(out.host(), out.host() + kUnits);
        }
    };

    if (concurrent) {
        std::vector<std::thread> threads;
        for (unsigned t = 0; t < kThreads; ++t)
            threads.emplace_back(worker, t);
        for (auto &th : threads)
            th.join();
    } else {
        for (unsigned t = 0; t < kThreads; ++t)
            worker(t);
    }
    svc.stop();

    res.profiledLaunches = profiledLaunches;
    res.profiledUnits = profiledUnits;
    res.coalesceHits = svc.metrics().counterValue("coalesce.hit");
    for (const auto &rec : store.records())
        res.selections[{rec.signature, rec.bucket}] = rec.selectedName;
    return res;
}

} // namespace

TEST(CoalesceDifferential, SameOutputsSameStoreLessProfiling)
{
    const RunResult serial = runStream(false, false);
    const RunResult uncoalesced = runStream(true, false);
    const RunResult coalesced = runStream(true, true);

    // Byte-identical outputs across all three schedules.
    for (unsigned t = 0; t < kThreads; ++t) {
        for (unsigned j = 0; j < kJobsPerThread; ++j) {
            EXPECT_EQ(serial.outputs[t][j], uncoalesced.outputs[t][j])
                << "thread " << t << " job " << j;
            EXPECT_EQ(serial.outputs[t][j], coalesced.outputs[t][j])
                << "thread " << t << " job " << j;
        }
    }

    // Equivalent final stores: same keys, same winner everywhere
    // (the virtual-time cost model makes "fast" win deterministically
    // regardless of schedule).
    EXPECT_EQ(serial.selections, uncoalesced.selections);
    EXPECT_EQ(serial.selections, coalesced.selections);
    EXPECT_EQ(coalesced.selections.size(), kSignatures);
    for (const auto &[key, winner] : coalesced.selections)
        EXPECT_EQ(winner, "fast") << key.first;

    // The serial run profiles each key exactly once; the coalesced
    // concurrent run matches it, because followers ride the leader's
    // record instead of re-profiling.
    EXPECT_EQ(serial.profiledLaunches, std::uint64_t{kSignatures});
    EXPECT_EQ(coalesced.profiledLaunches, std::uint64_t{kSignatures});
    EXPECT_GT(coalesced.coalesceHits, 0u);

    // The uncoalesced concurrent run pays redundant profiling for the
    // duplicated keys -- strictly more than the coalesced run.
    EXPECT_GT(uncoalesced.profiledLaunches,
              coalesced.profiledLaunches);
    EXPECT_GT(uncoalesced.profiledUnits, coalesced.profiledUnits);
}
