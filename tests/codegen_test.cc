/**
 * @file
 * Tests for the kernel version generator: the executable IR must
 * compute correctly under every schedule, memoize loop-invariant
 * loads like a compiler's register allocation would, and integrate
 * with the DySel runtime end-to-end (describe a kernel once, get a
 * selectable variant pool).
 */
#include <limits>
#include <map>

#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "dysel/runtime.hh"
#include "sim/cpu/cpu_device.hh"

using namespace dysel;
using namespace dysel::compiler;

namespace {

/**
 * gemv-style kernel: y[row] = sum_j A[row, j] * x[j], 16 rows per
 * work-group, an inner loop of 64 columns.
 * Canonical loops: L0 = wi (16 rows), L1 = j (64 columns).
 * Args: 0 = A (row major), 1 = x, 2 = y, (scalars appended by tests).
 */
ExecKernel
gemvKernel(std::int64_t cols = 64)
{
    ExecKernel k;
    k.name = "gemv";
    k.loops = {{"wi", BoundKind::Constant, true, false, 16},
               {"j", BoundKind::Constant, false, false,
                static_cast<std::uint64_t>(cols)}};
    k.laneLoops = {0};
    k.laneStrides = {1};
    k.numRegs = 3; // r0 = acc, r1 = a, r2 = x

    // Body: r1 = A[(unitBase*16 + wi)*cols + j]; r2 = x[j];
    //       r0 += r1 * r2
    ExecOp load_a{ExecOp::Kind::Load, 1, 0, 0, 0.0,
                  {0, 0, 16 * cols, {cols, 1}}};
    ExecOp load_x{ExecOp::Kind::Load, 2, 0, 0, 0.0, {1, 0, 0, {0, 1}}};
    ExecOp fma{ExecOp::Kind::Fma, 0, 1, 2, 0.0, {}};
    k.add(load_a).add(load_x).add(fma);

    // Epilogue: y[unitBase*16 + wi] = r0
    ExecOp store{ExecOp::Kind::Store, 0, 0, 0, 0.0,
                 {2, 0, 16, {1, 0}}};
    k.addEpilogue(store);
    return k;
}

struct GemvData
{
    kdp::Buffer<float> a{16 * 8 * 64, kdp::MemSpace::Global, "A"};
    kdp::Buffer<float> x{64, kdp::MemSpace::Global, "x"};
    kdp::Buffer<float> y{16 * 8, kdp::MemSpace::Global, "y"};
    kdp::KernelArgs args;

    GemvData()
    {
        for (std::uint64_t i = 0; i < a.size(); ++i)
            a.host()[i] = static_cast<float>((i % 7) + 1);
        for (std::uint64_t i = 0; i < x.size(); ++i)
            x.host()[i] = static_cast<float>((i % 5) - 2);
        y.fill(0.0f);
        args.add(a).add(x).add(y);
    }

    float
    reference(std::uint64_t row) const
    {
        float acc = 0.0f;
        for (std::uint64_t j = 0; j < 64; ++j)
            acc += a.host()[row * 64 + j] * x.host()[j];
        return acc;
    }
};

/** Execute one work-group of @p fn, returning its trace. */
kdp::WorkGroupTrace
runGroup(const kdp::KernelFn &fn, std::uint64_t group,
         const kdp::KernelArgs &args, std::uint32_t group_size)
{
    kdp::WorkGroupTrace trace;
    trace.reset(group_size);
    kdp::GroupCtx g(group, group_size, 1, &trace);
    fn(g, args);
    return trace;
}

} // namespace

TEST(Codegen, GroupGeometry)
{
    const ExecKernel k = gemvKernel();
    EXPECT_EQ(k.groupSize(), 16u);
    EXPECT_EQ(k.pointsPerGroup(), 16u * 64u);
}

TEST(Codegen, ComputesCorrectlyUnderEverySchedule)
{
    const ExecKernel k = gemvKernel();
    GemvData data;
    for (const auto &sched : allSchedules(2)) {
        data.y.fill(0.0f);
        const auto fn = generateKernel(k, sched);
        for (std::uint64_t group = 0; group < 8; ++group)
            runGroup(fn, group, data.args, 16);
        for (std::uint64_t row = 0; row < data.y.size(); ++row)
            ASSERT_NEAR(data.y.at(row), data.reference(row), 1e-3f)
                << "schedule " << sched.name() << " row " << row;
    }
}

TEST(Codegen, MemoizationDependsOnSchedule)
{
    const ExecKernel k = gemvKernel();
    GemvData data;

    // DFO (wi outer, j inner): x[j] re-walks per row -> 16*64 x loads.
    const auto dfo_trace =
        runGroup(generateKernel(k, Schedule{{0, 1}}), 0, data.args, 16);
    // BFO (j outer, wi inner): x[j] is loop-invariant across wi ->
    // memoized to 64 loads, like a hoisted register.
    const auto bfo_trace =
        runGroup(generateKernel(k, Schedule{{1, 0}}), 0, data.args, 16);

    auto loads_of = [&](const kdp::WorkGroupTrace &t,
                        const kdp::Buffer<float> &buf) {
        std::uint64_t n = 0;
        for (const auto &acc : t.accesses)
            n += acc.addr >= buf.baseAddr()
                 && acc.addr < buf.baseAddr() + buf.sizeBytes();
        return n;
    };
    EXPECT_EQ(loads_of(dfo_trace, data.x), 16u * 64u);
    EXPECT_EQ(loads_of(bfo_trace, data.x), 64u);
    // A is never invariant: same count either way.
    EXPECT_EQ(loads_of(dfo_trace, data.a), 16u * 64u);
    EXPECT_EQ(loads_of(bfo_trace, data.a), 16u * 64u);
}

TEST(Codegen, VariantsCarryScheduleNames)
{
    const ExecKernel k = gemvKernel();
    const auto variants = generateVariants(k, {2});
    ASSERT_EQ(variants.size(), 2u);
    EXPECT_EQ(variants[0].name, "gemv-L0.L1");
    EXPECT_EQ(variants[1].name, "gemv-L1.L0");
    EXPECT_EQ(variants[0].groupSize, 16u);
    EXPECT_EQ(variants[0].sandboxIndex, std::vector<std::size_t>{2});
}

TEST(Codegen, DerivedInfoMatchesTheIr)
{
    const ExecKernel k = gemvKernel();
    const KernelInfo info = deriveKernelInfo(k);
    EXPECT_EQ(info.signature, "gemv");
    ASSERT_EQ(info.loops.size(), 2u);
    EXPECT_TRUE(info.loops[0].workItemLoop);
    ASSERT_EQ(info.accesses.size(), 2u); // A and x loads
    EXPECT_EQ(info.accesses[0].coeffs,
              (std::vector<std::int64_t>{64, 1}));
    ASSERT_FALSE(info.outputArgs.empty());
    EXPECT_EQ(info.outputArgs[0], 2u);
}

TEST(Codegen, EndToEndWithTheRuntime)
{
    // The full paper pipeline: describe the kernel once, let the
    // version generator emit the pool, let DySel pick a schedule.
    // 256 columns make the BFO schedule's hoisted x loads a large,
    // unambiguous saving.
    constexpr std::uint64_t cols = 256;
    const ExecKernel k = gemvKernel(cols);

    constexpr std::uint64_t rows = 16 * 512;
    kdp::Buffer<float> a(rows * cols, kdp::MemSpace::Global, "A");
    kdp::Buffer<float> x(cols, kdp::MemSpace::Global, "x");
    kdp::Buffer<float> y(rows, kdp::MemSpace::Global, "y");
    for (std::uint64_t i = 0; i < a.size(); ++i)
        a.host()[i] = static_cast<float>((i % 7) + 1);
    for (std::uint64_t i = 0; i < x.size(); ++i)
        x.host()[i] = static_cast<float>((i % 5) - 2);
    kdp::KernelArgs args;
    args.add(a).add(x).add(y);

    // Ground truth: time each generated variant standalone on fresh
    // devices.
    std::map<std::string, sim::TimeNs> pure_times;
    sim::TimeNs best_time = std::numeric_limits<sim::TimeNs>::max();
    for (int i = 0; i < 2; ++i) {
        sim::CpuDevice probe_dev;
        runtime::Runtime probe(probe_dev);
        for (auto &v : generateVariants(k, {2}))
            probe.addKernel("gemv", std::move(v));
        runtime::LaunchOptions plain;
        plain.profiling = false;
        plain.initialVariant = i;
        const auto r =
            probe.launchKernel("gemv", rows / 16, args, plain);
        pure_times[r.selectedName] = r.elapsed();
        best_time = std::min(best_time, r.elapsed());
    }

    sim::CpuDevice device;
    runtime::Runtime rt(device);
    for (auto &v : generateVariants(k, {2}))
        rt.addKernel("gemv", std::move(v));
    rt.setKernelInfo("gemv", deriveKernelInfo(k));

    const auto report = rt.launchKernel("gemv", rows / 16, args);
    EXPECT_TRUE(report.profiled);
    // The selection is the best or a near-tie second best (micro
    // profiles of close schedules can land within the measurement's
    // cache-placement noise -- the paper's own spmv-jds anecdote).
    ASSERT_TRUE(pure_times.count(report.selectedName));
    EXPECT_LT(static_cast<double>(pure_times[report.selectedName]),
              1.2 * static_cast<double>(best_time));

    for (std::uint64_t row = 0; row < rows; ++row) {
        float acc = 0.0f;
        for (std::uint64_t j = 0; j < cols; ++j)
            acc += a.host()[row * cols + j] * x.host()[j];
        ASSERT_NEAR(y.at(row), acc, 1e-1f) << "row " << row;
    }
}
