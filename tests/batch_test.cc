/**
 * @file
 * Batched serving + allocation-free hot path tests (DESIGN §10).
 *
 * Covers the batching tentpole end to end: fused launches produce
 * byte-identical per-job outputs, done callbacks stay exactly-once on
 * every terminal path inside a batch (shed, cancel, demote), and a
 * steady-state submit->complete cycle performs zero heap allocations
 * on the submitter thread (asserted through a global operator-new
 * hook) while the shard pool's fresh counts stay flat.  Also covers
 * the redesigned submission surface: ServiceConfig::validate(),
 * registerKernelPool() before and after start(), and JobSpec /
 * submitMany().
 */
// The replaced global operator new below is malloc-backed; GCC pairs
// it against the library operator delete at inlined call sites and
// warns spuriously -- the replacement covers both sides.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/dispatch_service.hh"
#include "serve/loadgen.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"

using namespace dysel;
using namespace dysel::serve;

// ---- operator-new hook ----------------------------------------------
//
// Counts heap allocations on threads that opted in.  The zero-alloc
// test enables counting around its measured submit window only, so
// gtest internals and the worker threads stay invisible.

namespace {
thread_local bool tlCountAllocs = false;
thread_local std::uint64_t tlAllocCount = 0;
} // namespace

void *
operator new(std::size_t sz)
{
    if (tlCountAllocs)
        ++tlAllocCount;
    if (void *p = std::malloc(sz ? sz : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t sz)
{
    if (tlCountAllocs)
        ++tlAllocCount;
    if (void *p = std::malloc(sz ? sz : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

constexpr std::uint32_t laneCount = 8;

/** Position digest every variant computes (see loadgen). */
std::int32_t
digestOf(std::uint64_t u)
{
    return static_cast<std::int32_t>((u * 2654435761ull) & 0x7fffffff);
}

kdp::KernelVariant
workKernel(const char *name, std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [flops_per_unit](kdp::GroupCtx &g,
                            const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, digestOf(u), lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

/** Kernel that parks its first invocation until the gate opens. */
struct Gate
{
    std::atomic<std::uint64_t> entered{0};
    std::atomic<bool> release{false};

    void open() { release.store(true, std::memory_order_release); }

    void awaitEntered() const
    {
        while (entered.load(std::memory_order_acquire) == 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
    }
};

kdp::KernelVariant
gatedKernel(const char *name, Gate &gate, std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [&gate, flops_per_unit](kdp::GroupCtx &g,
                                   const kdp::KernelArgs &args) {
        gate.entered.fetch_add(1, std::memory_order_acq_rel);
        while (!gate.release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, digestOf(u), lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

/** Install the standard two-variant pool for @p sig. */
support::Status
installPool(DispatchService &svc, const std::string &sig)
{
    return svc.registerKernelPool([sig](runtime::Runtime &rt) {
        rt.addKernel(sig, workKernel("slow", 4000));
        rt.addKernel(sig, workKernel("fast", 100));
        rt.setKernelInfo(sig, regularInfo(sig));
    });
}

/** Every out[0, units) slot must hold its position digest. */
void
expectDigestOutput(const kdp::Buffer<std::int32_t> &out,
                   std::uint64_t units)
{
    for (std::uint64_t u = 0; u < units; ++u)
        ASSERT_EQ(out.at(u), digestOf(u)) << "unit " << u;
}

} // namespace

// ---- config validation ----------------------------------------------

TEST(ServiceConfigValidate, AcceptsDefaultsAndSaneBatchConfigs)
{
    EXPECT_TRUE(ServiceConfig().validate().ok());

    ServiceConfig cfg;
    cfg.batch.maxJobs = 8;
    cfg.batch.windowNs = 100'000;
    cfg.maxQueueDepth = 16;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(ServiceConfigValidate, RejectsNonsenseConfigs)
{
    ServiceConfig cfg;
    cfg.maxAttempts = 0;
    EXPECT_EQ(cfg.validate().code(),
              support::StatusCode::InvalidArgument);

    cfg = ServiceConfig();
    cfg.maxAttempts = 33; // backoff shift overflows
    EXPECT_FALSE(cfg.validate().ok());

    cfg = ServiceConfig();
    cfg.breakerThreshold = 0;
    EXPECT_FALSE(cfg.validate().ok());

    cfg = ServiceConfig();
    cfg.batch.maxJobs = 0;
    EXPECT_FALSE(cfg.validate().ok());

    cfg = ServiceConfig();
    cfg.maxQueueDepth = 2;
    cfg.batch.maxJobs = 4; // a full batch could never accumulate
    EXPECT_FALSE(cfg.validate().ok());

    cfg = ServiceConfig();
    cfg.batch.windowNs = 100; // window without batching
    EXPECT_FALSE(cfg.validate().ok());
}

TEST(ServiceConfigValidate, ConstructorThrowsOnInvalidConfig)
{
    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.maxAttempts = 0;
    EXPECT_THROW(DispatchService(store, cfg), std::invalid_argument);
}

// ---- registerKernelPool ----------------------------------------------

TEST(RegisterKernelPool, RejectsEmptyInstallerAndThrowingInstaller)
{
    store::SelectionStore store;
    DispatchService svc(store);
    svc.addDevice(std::make_unique<sim::CpuDevice>());

    EXPECT_EQ(svc.registerKernelPool(nullptr).code(),
              support::StatusCode::InvalidArgument);

    const auto st = svc.registerKernelPool([](runtime::Runtime &) {
        throw std::runtime_error("boom");
    });
    EXPECT_EQ(st.code(), support::StatusCode::Internal);
}

TEST(RegisterKernelPool, AppliesToDevicesAddedLater)
{
    store::SelectionStore store;
    DispatchService svc(store);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPool(svc, "bk").ok());
    // The pool was registered before this device existed.
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.start();

    constexpr std::uint64_t kUnits = 512;
    std::vector<JobSpec> specs(4);
    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (int i = 0; i < 4; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "bt.out");
    for (int i = 0; i < 4; ++i) {
        specs[i].signature("bk").units(kUnits);
        specs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(kUnits));
    }
    auto handles = svc.submitMany(specs);
    for (auto &h : handles)
        EXPECT_TRUE(h.result().ok()) << h.result().status.toString();
    svc.stop();
}

TEST(RegisterKernelPool, InstallsAfterStartWithoutCrossThreadAccess)
{
    store::SelectionStore store;
    DispatchService svc(store);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPool(svc, "bk").ok());
    svc.start();

    // A pool registered while the workers are live is applied by each
    // worker on its own thread before its next job.
    ASSERT_TRUE(installPool(svc, "late").ok());

    constexpr std::uint64_t kUnits = 512;
    kdp::Buffer<std::int32_t> out(kUnits, kdp::MemSpace::Global,
                                  "bt.out");
    JobSpec spec;
    spec.signature("late").units(kUnits);
    spec.mutableArgs().add(out).add(static_cast<std::int64_t>(kUnits));
    JobHandle h;
    svc.submitMany(std::span<const JobSpec>(&spec, 1),
                   std::span<JobHandle>(&h, 1));
    EXPECT_TRUE(h.result().ok()) << h.result().status.toString();
    expectDigestOutput(out, kUnits);
    svc.stop();
}

// ---- fused launches --------------------------------------------------

/**
 * Sub-threshold jobs (too small to profile) with different unit
 * counts in the same size bucket fuse into one launch; every member's
 * output slice is exact -- the fused wrapper rebases each group onto
 * its member's own args.
 */
TEST(Batch, FusesSmallJobsWithExactPerJobOutputSlices)
{
    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = 8;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPool(svc, "bk").ok());
    svc.start();

    // All in bucket 6 (64..127 units), none profilable.
    const std::array<std::uint64_t, 4> units = {96, 104, 112, 120};
    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::uint64_t u : units)
        outs.emplace_back(u, kdp::MemSpace::Global, "bt.out");
    std::vector<JobSpec> specs(units.size());
    for (std::size_t i = 0; i < units.size(); ++i) {
        specs[i].signature("bk").units(units[i]);
        specs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(units[i]));
    }

    // One submitMany pushes all four under one shard lock before the
    // idle worker wakes, so the gather is deterministic.
    auto handles = svc.submitMany(specs);
    for (std::size_t i = 0; i < handles.size(); ++i) {
        const JobResult &r = handles[i].result();
        ASSERT_TRUE(r.ok()) << r.status.toString();
        EXPECT_NE(r.batchedWith, 0u);
        EXPECT_TRUE(r.report.fused);
        EXPECT_EQ(r.report.fusedJobs, units.size());
        EXPECT_EQ(r.report.totalUnits, units[i]);
        expectDigestOutput(outs[i], units[i]);
    }
    svc.drain();
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("batch.launches"), 1u);
    EXPECT_EQ(m.counterValue("batch.jobs"), units.size());
    svc.stop();
}

/**
 * Profilable jobs batch only once their key's record exists: the cold
 * head profiles solo, and a later burst fuses warm behind the stored
 * winner with zero profiled units.
 */
TEST(Batch, WarmBatchServesFromOneStoreConsult)
{
    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = 8;
    cfg.batch.windowNs = 1'000'000; // 1 ms top-up window
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPool(svc, "bk").ok());
    svc.start();

    constexpr std::uint64_t kUnits = 512; // profilable
    kdp::Buffer<std::int32_t> warmOut(kUnits, kdp::MemSpace::Global,
                                      "bt.warm");
    JobSpec warm;
    warm.signature("bk").units(kUnits);
    warm.mutableArgs().add(warmOut).add(
        static_cast<std::int64_t>(kUnits));
    JobHandle wh;
    svc.submitMany(std::span<const JobSpec>(&warm, 1),
                   std::span<JobHandle>(&wh, 1));
    ASSERT_TRUE(wh.result().ok());
    ASSERT_TRUE(wh.result().report.profiled);
    svc.drain();

    constexpr std::size_t kJobs = 8;
    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::size_t i = 0; i < kJobs; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "bt.out");
    std::vector<JobSpec> specs(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        specs[i].signature("bk").units(kUnits);
        specs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(kUnits));
    }
    auto handles = svc.submitMany(specs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        const JobResult &r = handles[i].result();
        ASSERT_TRUE(r.ok()) << r.status.toString();
        EXPECT_TRUE(r.warmStart);
        EXPECT_NE(r.batchedWith, 0u);
        EXPECT_TRUE(r.report.fused);
        EXPECT_EQ(r.report.selectedName, "fast");
        EXPECT_EQ(r.report.profiledUnits, 0u);
        expectDigestOutput(outs[i], kUnits);
    }
    svc.drain();
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("batch.launches"), 1u);
    EXPECT_EQ(m.counterValue("batch.jobs"), kJobs);
    svc.stop();
}

/**
 * Batched and unbatched runs of the same seeded workload produce
 * byte-identical job outputs (XOR-combined per-job FNV digests) --
 * the end-to-end equivalence check over the whole service.
 */
TEST(Batch, BatchedAndUnbatchedRunsAreByteIdentical)
{
    LoadGenConfig cfg;
    cfg.submitters = 4;
    cfg.devices = 2;
    cfg.signatures = 2;
    cfg.sizeClasses = 2;
    cfg.baseUnits = 256;
    cfg.jobsPerSubmitter = 48;
    cfg.burst = 8;
    cfg.seed = 7;

    const LoadGenReport off = runLoadGen(cfg);
    ASSERT_EQ(off.jobsCompleted, off.jobsSubmitted);
    EXPECT_EQ(off.batchLaunches, 0u);

    cfg.maxBatchJobs = 8;
    cfg.batchWindowNs = 200'000;
    const LoadGenReport on = runLoadGen(cfg);
    ASSERT_EQ(on.jobsCompleted, on.jobsSubmitted);
    EXPECT_GT(on.batchJobs, 0u);

    EXPECT_EQ(off.outputChecksum, on.outputChecksum);
}

// ---- exactly-once callbacks on every terminal path -------------------

/**
 * A queued job cancelled while a batch forms around it is finished
 * exactly once with Cancelled; the rest of the batch fuses and
 * completes normally.
 */
TEST(BatchCallbacks, CancelInsideGatheredBatchFiresExactlyOnce)
{
    constexpr std::size_t kJobs = 6;
    constexpr std::uint64_t kUnits = 64; // sub-threshold
    Gate gate;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = 8;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([&gate](runtime::Runtime &rt) {
           rt.addKernel("gate", gatedKernel("only", gate, 100));
           rt.setKernelInfo("gate", regularInfo("gate"));
       }).throwIfError();
    ASSERT_TRUE(installPool(svc, "bk").ok());
    svc.start();

    // Pin the worker inside a solo job so the batchable jobs queue.
    kdp::Buffer<std::int32_t> gateOut(kUnits, kdp::MemSpace::Global,
                                      "bt.gate");
    JobSpec gateSpec;
    gateSpec.signature("gate").units(kUnits).noBatch();
    gateSpec.mutableArgs().add(gateOut).add(
        static_cast<std::int64_t>(kUnits));
    JobHandle gateHandle;
    svc.submitMany(std::span<const JobSpec>(&gateSpec, 1),
                   std::span<JobHandle>(&gateHandle, 1));
    gate.awaitEntered();

    std::array<std::atomic<int>, kJobs> fired{};
    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::size_t i = 0; i < kJobs; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "bt.out");
    std::vector<JobSpec> specs(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        specs[i].signature("bk").units(kUnits);
        specs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(kUnits));
        specs[i].onDone([&fired, i](const JobResult &) {
            fired[i].fetch_add(1, std::memory_order_acq_rel);
        });
    }
    auto handles = svc.submitMany(specs);

    // Withdraw two of the queued jobs before the worker gets to them.
    ASSERT_TRUE(handles[1].cancel());
    ASSERT_TRUE(handles[4].cancel());
    gate.open();
    svc.drain();

    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(fired[i].load(), 1) << "job " << i;
        const JobResult &r = handles[i].result();
        if (i == 1 || i == 4) {
            EXPECT_EQ(r.status.code(), support::StatusCode::Cancelled);
        } else {
            EXPECT_TRUE(r.ok()) << r.status.toString();
            EXPECT_NE(r.batchedWith, 0u);
            expectDigestOutput(outs[i], kUnits);
        }
    }
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("jobs.cancelled"), 2u);
    EXPECT_GE(m.counterValue("batch.launches"), 1u);
    svc.stop();
}

/**
 * Jobs shed by admission control while the worker is pinned fire
 * their callbacks exactly once (on the submitter thread) with
 * RESOURCE_EXHAUSTED; the admitted jobs batch and complete.
 */
TEST(BatchCallbacks, ShedDuringBatchingFiresExactlyOnce)
{
    constexpr std::size_t kJobs = 6;
    constexpr std::uint64_t kUnits = 64;
    Gate gate;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = 4;
    cfg.maxQueueDepth = 4;
    cfg.admission = AdmissionPolicy::Shed;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([&gate](runtime::Runtime &rt) {
           rt.addKernel("gate", gatedKernel("only", gate, 100));
           rt.setKernelInfo("gate", regularInfo("gate"));
       }).throwIfError();
    ASSERT_TRUE(installPool(svc, "bk").ok());
    svc.start();

    kdp::Buffer<std::int32_t> gateOut(kUnits, kdp::MemSpace::Global,
                                      "bt.gate");
    JobSpec gateSpec;
    gateSpec.signature("gate").units(kUnits).noBatch();
    gateSpec.mutableArgs().add(gateOut).add(
        static_cast<std::int64_t>(kUnits));
    JobHandle gateHandle;
    svc.submitMany(std::span<const JobSpec>(&gateSpec, 1),
                   std::span<JobHandle>(&gateHandle, 1));
    gate.awaitEntered();

    // 6 submissions against a depth-4 queue: 4 admitted, 2 shed.
    std::array<std::atomic<int>, kJobs> fired{};
    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::size_t i = 0; i < kJobs; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "bt.out");
    std::vector<JobSpec> specs(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        specs[i].signature("bk").units(kUnits);
        specs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(kUnits));
        specs[i].onDone([&fired, i](const JobResult &) {
            fired[i].fetch_add(1, std::memory_order_acq_rel);
        });
    }
    auto handles = svc.submitMany(specs);
    gate.open();
    svc.drain();

    std::size_t shed = 0, completed = 0;
    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(fired[i].load(), 1) << "job " << i;
        const JobResult &r = handles[i].result();
        if (r.status.code() == support::StatusCode::ResourceExhausted) {
            ++shed;
        } else {
            ASSERT_TRUE(r.ok()) << r.status.toString();
            expectDigestOutput(outs[i], kUnits);
            ++completed;
        }
    }
    EXPECT_EQ(shed, 2u);
    EXPECT_EQ(completed, 4u);
    EXPECT_EQ(svc.metrics().counterValue("admission.shed"), 2u);
    svc.stop();
}

/**
 * Regression: batch gathering extracts queued jobs without a pop, so
 * it must wake submitters blocked under AdmissionPolicy::Block
 * itself.  With more blocked submitters than pops (batches drain the
 * queue by extraction), a missing wakeup left a submitter parked on a
 * drained queue forever, deadlocking it and drain().
 */
TEST(BatchCallbacks, BlockedSubmittersReleasedWhenBatchDrainsQueue)
{
    constexpr std::size_t kBlocked = 3;
    constexpr std::uint64_t kUnits = 64; // sub-threshold, batchable
    Gate gate;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = 2;
    cfg.batch.windowNs = 200'000;
    cfg.maxQueueDepth = 2;
    cfg.admission = AdmissionPolicy::Block;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([&gate](runtime::Runtime &rt) {
           rt.addKernel("gate", gatedKernel("only", gate, 100));
           rt.setKernelInfo("gate", regularInfo("gate"));
       }).throwIfError();
    ASSERT_TRUE(installPool(svc, "bk").ok());
    svc.start();

    // Pin the worker, then fill the depth-2 queue with a fusable pair.
    kdp::Buffer<std::int32_t> gateOut(kUnits, kdp::MemSpace::Global,
                                      "bt.gate");
    JobSpec gateSpec;
    gateSpec.signature("gate").units(kUnits).noBatch();
    gateSpec.mutableArgs().add(gateOut).add(
        static_cast<std::int64_t>(kUnits));
    JobHandle gateHandle;
    svc.submitMany(std::span<const JobSpec>(&gateSpec, 1),
                   std::span<JobHandle>(&gateHandle, 1));
    gate.awaitEntered();

    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::size_t i = 0; i < 2 + kBlocked; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "bt.out");
    std::vector<JobSpec> fillSpecs(2);
    for (std::size_t i = 0; i < 2; ++i) {
        fillSpecs[i].signature("bk").units(kUnits);
        fillSpecs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(kUnits));
    }
    auto fillHandles = svc.submitMany(fillSpecs);

    // Three more submitters block against the full queue; every pop
    // wakes at most one of them, so batch extraction must wake the
    // rest.
    std::array<JobHandle, kBlocked> blockedHandles;
    std::vector<std::thread> submitters;
    for (std::size_t i = 0; i < kBlocked; ++i) {
        submitters.emplace_back([&, i] {
            JobSpec spec;
            spec.signature("bk").units(kUnits);
            spec.mutableArgs().add(outs[2 + i]).add(
                static_cast<std::int64_t>(kUnits));
            svc.submitMany(std::span<const JobSpec>(&spec, 1),
                           std::span<JobHandle>(
                               &blockedHandles[i], 1));
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    gate.open();
    for (auto &t : submitters)
        t.join();
    svc.drain();

    EXPECT_TRUE(gateHandle.result().ok());
    for (auto &h : fillHandles)
        EXPECT_TRUE(h.result().ok()) << h.result().status.toString();
    for (std::size_t i = 0; i < kBlocked; ++i) {
        EXPECT_TRUE(blockedHandles[i].result().ok())
            << blockedHandles[i].result().status.toString();
        expectDigestOutput(outs[2 + i], kUnits);
    }
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("jobs.completed"), 1 + 2 + kBlocked);
    EXPECT_GE(m.counterValue("admission.blocked"), 1u);
    svc.stop();
}

/**
 * A fused launch that fails as a whole demotes every member to solo
 * re-execution instead of failing the batch; each member's callback
 * still fires exactly once when its solo attempts settle.
 */
TEST(BatchCallbacks, FusedFailureDemotesToSoloWithExactlyOnceCallbacks)
{
    constexpr std::size_t kJobs = 6;
    constexpr std::uint64_t kUnits = 64;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = 8;
    cfg.maxAttempts = 1; // solo re-execution fails terminally
    DispatchService svc(store, cfg);
    const unsigned idx =
        svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPool(svc, "bk").ok());

    // Every launch fails: the fused launch is demoted, and each solo
    // re-execution then fails on its own single attempt.
    sim::FaultConfig fcfg;
    fcfg.launchFailProb = 1.0;
    fcfg.seed = 0xbadbad;
    sim::FaultInjector faults(fcfg);
    svc.device(idx).setFaultInjector(&faults);
    svc.start();

    std::array<std::atomic<int>, kJobs> fired{};
    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::size_t i = 0; i < kJobs; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "bt.out");
    std::vector<JobSpec> specs(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        specs[i].signature("bk").units(kUnits);
        specs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(kUnits));
        specs[i].onDone([&fired, i](const JobResult &) {
            fired[i].fetch_add(1, std::memory_order_acq_rel);
        });
    }
    auto handles = svc.submitMany(specs);
    svc.drain();

    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(fired[i].load(), 1) << "job " << i;
        EXPECT_FALSE(handles[i].result().ok());
    }
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("batch.demoted"), kJobs);
    EXPECT_EQ(m.counterValue("jobs.failed"), kJobs);
    svc.stop();
}

// ---- allocation-free hot path ----------------------------------------

/**
 * After warm-up, a steady-state submit->complete cycle performs ZERO
 * heap allocations on the submitter thread (operator-new hook), and
 * the shard pool mints no fresh states or shells -- everything is
 * recycled.
 */
TEST(BatchAlloc, SteadyStateSubmitIsAllocationFree)
{
    constexpr std::size_t kBurst = 8;
    constexpr std::uint64_t kUnits = 64; // sub-threshold: no profiling
    constexpr int kWarmupIters = 300;
    constexpr int kMeasuredIters = 100;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = kBurst;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPool(svc, "bk").ok());
    svc.start();

    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::size_t i = 0; i < kBurst; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "bt.out");
    std::vector<JobSpec> specs(kBurst);
    for (std::size_t i = 0; i < kBurst; ++i) {
        specs[i].signature("bk").units(kUnits);
        specs[i].mutableArgs().add(outs[i]).add(
            static_cast<std::int64_t>(kUnits));
    }
    std::vector<JobHandle> handles(kBurst);
    const std::span<const JobSpec> specSpan(specs.data(), kBurst);
    const std::span<JobHandle> handleSpan(handles.data(), kBurst);

    auto oneIteration = [&] {
        svc.submitMany(specSpan, handleSpan);
        for (std::size_t i = 0; i < kBurst; ++i) {
            handles[i].wait();
            handles[i] = JobHandle();
        }
    };

    // Warm-up: reach the pool's steady high-water mark (states,
    // shells, ring capacity, thread-local routing scratch).
    for (int it = 0; it < kWarmupIters; ++it)
        oneIteration();
    svc.drain();

    const BufferPool::Stats before = svc.poolStats(0);
    tlAllocCount = 0;
    tlCountAllocs = true;
    for (int it = 0; it < kMeasuredIters; ++it)
        oneIteration();
    tlCountAllocs = false;
    const std::uint64_t submitterAllocs = tlAllocCount;
    svc.drain();
    const BufferPool::Stats after = svc.poolStats(0);

    EXPECT_EQ(submitterAllocs, 0u)
        << "steady-state submit path allocated on the submitter thread";
    EXPECT_EQ(after.freshStates, before.freshStates)
        << "pool minted fresh job states in the steady window";
    EXPECT_EQ(after.freshShells, before.freshShells)
        << "pool minted fresh queue shells in the steady window";
    EXPECT_GT(after.reusedStates, before.reusedStates);
    EXPECT_GT(after.reusedShells, before.reusedShells);

    // And the jobs actually ran -- batched.
    EXPECT_GT(svc.metrics().counterValue("batch.launches"), 0u);
    svc.stop();
}
