/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */
#include <gtest/gtest.h>

#include "sim/cache/cache.hh"

using namespace dysel::sim;

TEST(Cache, ColdMissThenHit)
{
    Cache c({1024, 2, 64});
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)); // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
}

TEST(Cache, LruEviction)
{
    // Direct-mapped-ish: 2 ways, line 64, 128 bytes total = 1 set.
    Cache c({128, 2, 64});
    EXPECT_EQ(c.numSets(), 1u);
    c.access(0x0000);
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x0000));  // refresh LRU of line 0
    c.access(0x2000);               // evicts 0x1000 (LRU)
    EXPECT_TRUE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x1000)); // was evicted
}

TEST(Cache, SetIndexingSeparatesLines)
{
    Cache c({4096, 1, 64}); // 64 sets, direct mapped
    // Two addresses in different sets never evict each other.
    c.access(0x0000);
    c.access(0x0040);
    EXPECT_TRUE(c.access(0x0000));
    EXPECT_TRUE(c.access(0x0040));
}

TEST(Cache, FlushDropsEverything)
{
    Cache c({1024, 2, 64});
    c.access(0x100);
    ASSERT_TRUE(c.contains(0x100));
    c.flush();
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, StatsCount)
{
    Cache c({1024, 2, 64});
    c.access(0x0);
    c.access(0x0);
    c.access(0x40);
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_NEAR(c.missRatio(), 2.0 / 3.0, 1e-12);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.access(0x0)); // contents survive stat reset
}

TEST(Cache, WorkingSetLargerThanCapacityMisses)
{
    Cache c({1024, 4, 64}); // 16 lines capacity
    // Stream 64 distinct lines twice: second pass still misses
    // (capacity evictions).
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t line = 0; line < 64; ++line)
            c.access(line * 64);
    EXPECT_GT(c.missRatio(), 0.9);
}

TEST(Cache, WorkingSetFittingCapacityHitsOnSecondPass)
{
    Cache c({4096, 4, 64}); // 64 lines capacity
    for (std::uint64_t line = 0; line < 32; ++line)
        c.access(line * 64);
    c.resetStats();
    for (std::uint64_t line = 0; line < 32; ++line)
        c.access(line * 64);
    EXPECT_EQ(c.misses(), 0u);
}

/** Property sweep: geometry invariants across configurations. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, SequentialStreamMissesOncePerLine)
{
    const auto [size_kb, ways, line] = GetParam();
    Cache c({static_cast<std::uint64_t>(size_kb) * 1024,
             static_cast<unsigned>(ways), static_cast<unsigned>(line)});
    const std::uint64_t bytes = 8 * 1024;
    for (std::uint64_t a = 0; a < bytes; a += 4)
        c.access(a);
    // One miss per distinct line, no conflict misses on a pure
    // sequential stream (when capacity >= stream or LRU keeps order).
    EXPECT_EQ(c.misses(), bytes / line);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(32, 8, 64),
                      std::make_tuple(16, 4, 64),
                      std::make_tuple(8, 2, 32),
                      std::make_tuple(64, 16, 128),
                      std::make_tuple(256, 8, 64)));

TEST(CacheDeath, RejectsNonPowerOfTwoLine)
{
    EXPECT_DEATH(Cache({1024, 2, 48}), "");
}
