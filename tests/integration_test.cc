/**
 * @file
 * End-to-end tests: DySel on real workloads must select the right
 * variant, stay close to the oracle, adapt to input data, and
 * amortize profiling across iterative launches -- the paper's core
 * claims, asserted as invariants.
 */
#include <gtest/gtest.h>

#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/histogram.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"

using namespace dysel;
using namespace dysel::workloads;

TEST(Integration, DyselNearOracleOnSgemmVector)
{
    Workload w = makeSgemmVectorCpu();
    const auto oracle = runOracle(cpuFactory(), w);
    EXPECT_EQ(oracle.runs[oracle.bestIndex].name, "8-way");

    for (auto orch : {runtime::Orchestration::Sync,
                      runtime::Orchestration::Async}) {
        runtime::LaunchOptions opt;
        opt.orch = orch;
        const auto run = runDysel(cpuFactory(), w, opt);
        EXPECT_TRUE(run.ok);
        EXPECT_EQ(run.firstIteration.selectedName, "8-way");
        // Near-oracle on a deliberately small workload: the profiled
        // scalar slices cost real time, but DySel must stay well
        // below the 1.42x of the second-best pure variant.
        EXPECT_LT(relative(run.elapsed, oracle.best()), 1.42);
    }
}

TEST(Integration, InputDependentSelectionOnGpu)
{
    // The paper's Case Study IV: the right spmv kernel depends on the
    // matrix, which only the runtime can see.
    {
        Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Random);
        const auto run = runDysel(gpuFactory(), w,
                                  runtime::LaunchOptions{});
        EXPECT_TRUE(run.ok);
        EXPECT_EQ(run.firstIteration.selectedName, "vector");
    }
    {
        Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Diagonal);
        const auto run = runDysel(gpuFactory(), w,
                                  runtime::LaunchOptions{});
        EXPECT_TRUE(run.ok);
        EXPECT_EQ(run.firstIteration.selectedName, "scalar");
    }
}

TEST(Integration, InputDependentScheduleOnCpu)
{
    // LC's static pick (DFO) is right for the random matrix and wrong
    // for the diagonal one; DySel adapts.
    {
        Workload w = makeSpmvCsrCpuLc(SpmvInput::Random);
        const auto run = runDysel(cpuFactory(), w,
                                  runtime::LaunchOptions{});
        EXPECT_EQ(run.firstIteration.selectedName, "scalar-dfo");
        EXPECT_TRUE(run.ok);
    }
    {
        Workload w = makeSpmvCsrCpuLc(SpmvInput::Diagonal);
        const auto run = runDysel(cpuFactory(), w,
                                  runtime::LaunchOptions{});
        EXPECT_EQ(run.firstIteration.selectedName, "scalar-bfo");
        EXPECT_TRUE(run.ok);
    }
}

TEST(Integration, IterativeProfilingAmortizes)
{
    // Profiling only the first iteration must beat profiling every
    // iteration (§5.2's experiment, inverted as an invariant).
    Workload w = makeSpmvCsrCpuLc(SpmvInput::Random);
    runtime::LaunchOptions opt;
    const auto amortized = runDysel(cpuFactory(), w, opt, false);
    const auto every = runDysel(cpuFactory(), w, opt, true);
    EXPECT_TRUE(amortized.ok);
    EXPECT_TRUE(every.ok);
    EXPECT_LT(amortized.elapsed, every.elapsed);
}

TEST(Integration, SwapModeIsCorrectForAtomicKernels)
{
    // Histogram work-groups update overlapping bins through atomics;
    // the compiler analyses must force swap mode and the result must
    // still be exact on both devices.
    for (bool gpu : {false, true}) {
        Workload w = makeHistogram();
        const DeviceFactory factory = gpu ? gpuFactory() : cpuFactory();
        const auto run = runDysel(factory, w, runtime::LaunchOptions{});
        EXPECT_TRUE(run.ok) << (gpu ? "gpu" : "cpu");
        EXPECT_EQ(run.firstIteration.mode,
                  runtime::ProfilingMode::Swap);
        // Swap never supports async (Table 1).
        EXPECT_EQ(run.firstIteration.orch,
                  runtime::Orchestration::Sync);
    }
}

TEST(Integration, MixedFactorsOnGpuPickTheCoarseKernel)
{
    Workload w = makeSgemmMixed();
    const auto run = runDysel(gpuFactory(), w, runtime::LaunchOptions{});
    EXPECT_TRUE(run.ok);
    EXPECT_EQ(run.firstIteration.selectedName, "tiled16-coarse4");
}

TEST(Integration, MixedFactorsOnCpuPickTheBaseKernel)
{
    Workload w = makeSgemmMixed();
    const auto run = runDysel(cpuFactory(), w, runtime::LaunchOptions{});
    EXPECT_TRUE(run.ok);
    EXPECT_EQ(run.firstIteration.selectedName, "base");
}

TEST(Integration, ProfilingOverheadWithinPaperBound)
{
    // The headline claim: under 8% worst-case overhead vs the oracle
    // for the iterative, well-amortized cases.
    Workload w = makeSpmvCsrCpuLc(SpmvInput::Diagonal);
    const auto oracle = runOracle(cpuFactory(), w);
    const auto run = runDysel(cpuFactory(), w, runtime::LaunchOptions{});
    EXPECT_TRUE(run.ok);
    EXPECT_LT(relative(run.elapsed, oracle.best()), 1.08);
}
