/**
 * @file
 * Tests for the CPU device simulator: execution correctness, task
 * scheduling (priorities, streams, parallelism), and cost-model
 * properties (locality, vectorization, scratchpad lowering).
 */
#include <gtest/gtest.h>

#include "kdp/context.hh"
#include "sim/cpu/cpu_cost_model.hh"
#include "sim/cpu/cpu_device.hh"

using namespace dysel;
using namespace dysel::sim;

namespace {

/** Kernel writing each work-item's global id into arg 0. */
kdp::KernelVariant
idKernel(const char *name = "id", std::uint32_t group_size = 8)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = group_size;
    v.fn = [](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        auto &out = args.buf<std::uint32_t>(0);
        kdp::forEachItem(g, [&](kdp::ItemCtx &item) {
            item.store(out, item.globalId(),
                       static_cast<std::uint32_t>(item.globalId()));
            item.flops(4);
        });
    };
    return v;
}

} // namespace

TEST(CpuDevice, ExecutesAllGroupsAndProducesOutput)
{
    CpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(8 * 16, kdp::MemSpace::Global, "out");

    Launch launch;
    launch.variant = &variant;
    launch.args.add(out);
    launch.numGroups = 16;
    bool completed = false;
    launch.onComplete = [&](const LaunchStats &stats) {
        completed = true;
        EXPECT_EQ(stats.groups, 16u);
        EXPECT_GT(stats.busyTime, 0u);
        EXPECT_GE(stats.lastStamp, stats.firstStamp);
    };
    dev.submit(std::move(launch));
    dev.run();

    EXPECT_TRUE(completed);
    EXPECT_EQ(dev.groupsExecuted(), 16u);
    for (std::uint32_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out.at(i), i);
}

TEST(CpuDevice, FirstGroupOffsetsTheGrid)
{
    CpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(8 * 8, kdp::MemSpace::Global, "out");
    out.fill(~0u);

    Launch launch;
    launch.variant = &variant;
    launch.args.add(out);
    launch.firstGroup = 4; // paper's block-index shifting
    launch.numGroups = 4;
    dev.submit(std::move(launch));
    dev.run();

    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(out.at(i), ~0u); // groups 0-3 untouched
    for (std::uint32_t i = 32; i < 64; ++i)
        EXPECT_EQ(out.at(i), i);
}

TEST(CpuDevice, ParallelismShortensWallTime)
{
    CpuConfig one_core;
    one_core.cores = 1;
    CpuDevice serial(one_core);
    CpuDevice parallel; // 8 cores

    auto run = [](CpuDevice &dev) {
        auto variant = idKernel();
        kdp::Buffer<std::uint32_t> out(8 * 64, kdp::MemSpace::Global,
                                       "out");
        Launch launch;
        launch.variant = &variant;
        launch.args.add(out);
        launch.numGroups = 64;
        dev.submit(std::move(launch));
        dev.run();
        return dev.now();
    };

    const TimeNs serial_time = run(serial);
    const TimeNs parallel_time = run(parallel);
    EXPECT_LT(parallel_time * 4, serial_time);
}

TEST(CpuDevice, HigherPriorityRunsFirst)
{
    CpuConfig cfg;
    cfg.cores = 1; // serialize to observe ordering
    CpuDevice dev(cfg);
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(8 * 8, kdp::MemSpace::Global, "out");

    TimeNs low_done = 0, high_done = 0;
    Launch low;
    low.variant = &variant;
    low.args.add(out);
    low.numGroups = 4;
    low.priority = 0;
    low.stream = 1;
    low.onComplete = [&](const LaunchStats &) { low_done = dev.now(); };

    Launch high;
    high.variant = &variant;
    high.args.add(out);
    high.firstGroup = 4;
    high.numGroups = 4;
    high.priority = 1;
    high.stream = 2;
    high.onComplete = [&](const LaunchStats &) { high_done = dev.now(); };

    // Submit low first; the profiling-priority launch must still
    // finish first (§3.2's prioritized task groups).
    dev.submit(std::move(low));
    dev.submit(std::move(high));
    dev.run();
    EXPECT_LT(high_done, low_done);
}

TEST(CpuDevice, SameStreamLaunchesSerialize)
{
    CpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(8 * 16, kdp::MemSpace::Global, "out");

    TimeNs first_end = 0, second_first_start = 0;
    Launch a;
    a.variant = &variant;
    a.args.add(out);
    a.numGroups = 8;
    a.stream = 3;
    a.onComplete = [&](const LaunchStats &s) { first_end = s.lastStamp; };

    Launch b;
    b.variant = &variant;
    b.args.add(out);
    b.firstGroup = 8;
    b.numGroups = 8;
    b.stream = 3;
    b.onComplete = [&](const LaunchStats &s) {
        second_first_start = s.firstStamp;
    };

    dev.submit(std::move(a));
    dev.submit(std::move(b));
    dev.run();
    EXPECT_GE(second_first_start, first_end);
}

TEST(CpuDevice, GroupStampCallbackFiresPerGroup)
{
    CpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(8 * 8, kdp::MemSpace::Global, "out");

    int stamps = 0;
    Launch launch;
    launch.variant = &variant;
    launch.args.add(out);
    launch.numGroups = 8;
    launch.onGroupStamp = [&](TimeNs start, TimeNs end) {
        EXPECT_LT(start, end);
        ++stamps;
    };
    dev.submit(std::move(launch));
    dev.run();
    EXPECT_EQ(stamps, 8);
}

TEST(CpuDevice, NoiseIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        CpuConfig cfg;
        cfg.noiseSigma = 0.2;
        cfg.seed = seed;
        CpuDevice dev(cfg);
        auto variant = idKernel();
        kdp::Buffer<std::uint32_t> out(8 * 32, kdp::MemSpace::Global,
                                       "out");
        Launch launch;
        launch.variant = &variant;
        launch.args.add(out);
        launch.numGroups = 32;
        dev.submit(std::move(launch));
        dev.run();
        return dev.now();
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}

// ---- Cost model properties -----------------------------------------

namespace {

kdp::WorkGroupTrace
sequentialTrace(const kdp::Buffer<float> &buf, unsigned lanes,
                unsigned per_lane)
{
    kdp::WorkGroupTrace t;
    t.reset(lanes);
    kdp::GroupCtx g(0, lanes, 1, &t);
    for (unsigned i = 0; i < per_lane; ++i)
        for (unsigned lane = 0; lane < lanes; ++lane)
            g.load(buf, std::uint64_t{i} * lanes + lane, lane);
    return t;
}

double
costOf(const kdp::WorkGroupTrace &t, const kdp::VariantTraits &traits)
{
    CpuConfig cfg;
    CpuCoreState core(cfg.l1, cfg.l2);
    Cache l3(cfg.l3);
    return cpuWorkGroupCycles(t, traits, core, l3, cfg.cost);
}

/** Cost with warm caches: replay once, measure the second pass. */
double
warmCostOf(const kdp::WorkGroupTrace &t, const kdp::VariantTraits &traits)
{
    CpuConfig cfg;
    CpuCoreState core(cfg.l1, cfg.l2);
    Cache l3(cfg.l3);
    cpuWorkGroupCycles(t, traits, core, l3, cfg.cost);
    return cpuWorkGroupCycles(t, traits, core, l3, cfg.cost);
}

} // namespace

TEST(CpuCostModel, CachedReuseIsCheaperThanStreaming)
{
    kdp::Buffer<float> big(1 << 22, kdp::MemSpace::Global, "big");
    kdp::Buffer<float> small(16, kdp::MemSpace::Global, "small");

    kdp::WorkGroupTrace stream;
    stream.reset(1);
    kdp::GroupCtx gs(0, 1, 1, &stream);
    for (unsigned i = 0; i < 4096; ++i)
        gs.load(big, std::uint64_t{i} * 64, 0); // one access per line

    kdp::WorkGroupTrace reuse;
    reuse.reset(1);
    kdp::GroupCtx gr(0, 1, 1, &reuse);
    for (unsigned i = 0; i < 4096; ++i)
        gr.load(small, i % 16, 0);

    EXPECT_GT(costOf(stream, {}), 4.0 * costOf(reuse, {}));
}

TEST(CpuCostModel, VectorizationSpeedsUpContiguousKernels)
{
    kdp::Buffer<float> buf(8 * 128, kdp::MemSpace::Global, "b");
    const auto t = sequentialTrace(buf, 8, 128);

    kdp::VariantTraits scalar;
    kdp::VariantTraits wide;
    wide.vectorWidth = 8;
    // Compare steady-state (warm-cache) costs; cold compulsory
    // misses are identical for both and would mask the speedup.
    const double c_scalar = warmCostOf(t, scalar);
    const double c_wide = warmCostOf(t, wide);
    EXPECT_LT(c_wide * 2, c_scalar);
}

TEST(CpuCostModel, DivergencePenalizesWiderVectors)
{
    kdp::WorkGroupTrace t;
    t.reset(8);
    kdp::GroupCtx g(0, 8, 1, &t);
    for (unsigned i = 0; i < 256; ++i)
        for (unsigned lane = 0; lane < 8; ++lane)
            g.branch(lane, lane % 2 == 0); // divergent everywhere
    kdp::VariantTraits w4, w8;
    w4.vectorWidth = 4;
    w8.vectorWidth = 8;
    EXPECT_GT(costOf(t, w8), costOf(t, w4));
}

TEST(CpuCostModel, GatherCostsMoreThanContiguous)
{
    kdp::Buffer<float> buf(8 * 4096, kdp::MemSpace::Global, "b");
    // Contiguous: lanes access adjacent elements.
    const auto contiguous = sequentialTrace(buf, 8, 64);
    // Gather: lanes access strided elements (one per line).
    kdp::WorkGroupTrace gather;
    gather.reset(8);
    kdp::GroupCtx g(0, 8, 1, &gather);
    for (unsigned i = 0; i < 64; ++i)
        for (unsigned lane = 0; lane < 8; ++lane)
            g.load(buf, (std::uint64_t{i} * 8 + lane) * 17, lane);
    kdp::VariantTraits wide;
    wide.vectorWidth = 8;
    EXPECT_GT(costOf(gather, wide), costOf(contiguous, wide));
}

TEST(CpuCostModel, BroadcastIsCheap)
{
    kdp::Buffer<float> buf(64, kdp::MemSpace::Global, "b");
    // All lanes read the same element per op.
    kdp::WorkGroupTrace t;
    t.reset(8);
    kdp::GroupCtx g(0, 8, 1, &t);
    for (unsigned i = 0; i < 64; ++i)
        for (unsigned lane = 0; lane < 8; ++lane)
            g.load(buf, i % 16, lane);
    kdp::VariantTraits wide;
    wide.vectorWidth = 8;
    // Broadcast vector ops should cost about one scalar load each,
    // i.e. far less than 8 separate loads.
    const double c = costOf(t, wide);
    EXPECT_LT(c, 64 * 8 * 1.0);
}

TEST(CpuCostModel, ScratchpadLoweringCostsExtra)
{
    kdp::WorkGroupTrace with_scratch;
    with_scratch.reset(1);
    kdp::GroupCtx g(0, 1, 1, &with_scratch);
    auto local = g.allocLocal<float>(64);
    for (unsigned i = 0; i < 256; ++i)
        local.set(g, i % 64, 1.0f, 0);

    kdp::Buffer<float> buf(64, kdp::MemSpace::Global, "b");
    kdp::WorkGroupTrace plain;
    plain.reset(1);
    kdp::GroupCtx g2(0, 1, 1, &plain);
    for (unsigned i = 0; i < 256; ++i)
        g2.store(buf, i % 64, 1.0f, 0);

    EXPECT_GT(costOf(with_scratch, {}), costOf(plain, {}));
}

TEST(CpuCostModel, SoftwarePrefetchIsPureOverheadOnCpu)
{
    kdp::Buffer<float> buf(1024, kdp::MemSpace::Global, "b");
    const auto t = sequentialTrace(buf, 8, 64);
    kdp::VariantTraits plain, prefetch;
    prefetch.softwarePrefetch = true;
    EXPECT_GT(costOf(t, prefetch), costOf(t, plain));
}
