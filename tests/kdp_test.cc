/**
 * @file
 * Unit tests for the programming-model layer: buffers, argument
 * lists, traces, and the execution context.
 */
#include <gtest/gtest.h>

#include "kdp/args.hh"
#include "kdp/buffer.hh"
#include "kdp/context.hh"
#include "kdp/kernel.hh"
#include "kdp/trace.hh"

using namespace dysel::kdp;

TEST(Buffer, AllocationsGetDisjointAddressRanges)
{
    Buffer<float> a(100, MemSpace::Global, "a");
    Buffer<float> b(100, MemSpace::Global, "b");
    const auto a_end = a.baseAddr() + a.sizeBytes();
    const auto b_end = b.baseAddr() + b.sizeBytes();
    EXPECT_TRUE(a_end <= b.baseAddr() || b_end <= a.baseAddr());
}

TEST(Buffer, ElementAddressing)
{
    Buffer<double> b(10, MemSpace::Global, "d");
    EXPECT_EQ(b.elemSize(), 8u);
    EXPECT_EQ(b.addrOf(3), b.baseAddr() + 24);
    EXPECT_EQ(b.sizeBytes(), 80u);
}

TEST(Buffer, CloneCopiesDataToFreshRange)
{
    Buffer<int> b(4, MemSpace::Global, "src");
    b.at(2) = 42;
    auto clone = b.clone();
    EXPECT_NE(clone->baseAddr(), b.baseAddr());
    EXPECT_EQ(static_cast<Buffer<int> &>(*clone).at(2), 42);
    // Mutating the clone leaves the original untouched.
    static_cast<Buffer<int> &>(*clone).at(2) = 7;
    EXPECT_EQ(b.at(2), 42);
}

TEST(Buffer, CopyFromRestoresContents)
{
    Buffer<int> a(4, MemSpace::Global, "a");
    Buffer<int> b(4, MemSpace::Global, "b");
    a.at(1) = 5;
    b.copyFrom(a);
    EXPECT_EQ(b.at(1), 5);
}

TEST(Buffer, SpaceIsMutable)
{
    Buffer<float> b(4, MemSpace::Global, "x");
    EXPECT_EQ(b.space(), MemSpace::Global);
    b.setSpace(MemSpace::Texture);
    EXPECT_EQ(b.space(), MemSpace::Texture);
}

TEST(BufferDeath, HostAccessOutOfBounds)
{
    Buffer<int> b(4, MemSpace::Global, "x");
    EXPECT_DEATH(b.at(4), "");
}

TEST(KernelArgs, TypedAccess)
{
    Buffer<float> f(4, MemSpace::Global, "f");
    Buffer<int> i(4, MemSpace::Global, "i");
    KernelArgs args;
    args.add(f).add(i).add(7).add(2.5);
    EXPECT_EQ(args.size(), 4u);
    EXPECT_EQ(&args.buf<float>(0), &f);
    EXPECT_EQ(&args.buf<int>(1), &i);
    EXPECT_EQ(args.scalarInt(2), 7);
    EXPECT_DOUBLE_EQ(args.scalarDouble(3), 2.5);
}

TEST(KernelArgs, RebindSwapsBufferSlot)
{
    Buffer<float> f(4, MemSpace::Global, "f");
    Buffer<float> g(4, MemSpace::Global, "g");
    KernelArgs args;
    args.add(f);
    args.rebind(0, g);
    EXPECT_EQ(&args.buf<float>(0), &g);
}

TEST(KernelArgsDeath, WrongTypePanics)
{
    Buffer<float> f(4, MemSpace::Global, "f");
    KernelArgs args;
    args.add(f);
    EXPECT_DEATH(args.buf<int>(0), "");
}

TEST(KernelArgsDeath, ScalarIsNotBuffer)
{
    KernelArgs args;
    args.add(3);
    EXPECT_DEATH(args.bufBase(0), "");
}

TEST(Trace, ResetClearsEverything)
{
    WorkGroupTrace t;
    t.reset(4);
    t.accesses.push_back({0, 0, 0, 4, MemSpace::Global, false, false});
    t.laneFlops[1] = 5;
    t.barriers = 2;
    t.reset(8);
    EXPECT_TRUE(t.accesses.empty());
    EXPECT_EQ(t.laneFlops.size(), 8u);
    EXPECT_EQ(t.totalFlops(), 0u);
    EXPECT_EQ(t.barriers, 0u);
}

TEST(GroupCtx, RecordsAccessesInExecutionOrder)
{
    Buffer<float> buf(16, MemSpace::Global, "b");
    WorkGroupTrace t;
    t.reset(4);
    GroupCtx g(3, 4, 2, &t);
    EXPECT_EQ(g.group(), 3u);
    EXPECT_EQ(g.unitBase(), 6u);
    EXPECT_EQ(g.globalId(1), 13u);

    g.load(buf, 5, 0);
    g.store(buf, 6, 1.0f, 1);
    ASSERT_EQ(t.accesses.size(), 2u);
    EXPECT_EQ(t.accesses[0].addr, buf.addrOf(5));
    EXPECT_FALSE(t.accesses[0].write);
    EXPECT_EQ(t.accesses[1].addr, buf.addrOf(6));
    EXPECT_TRUE(t.accesses[1].write);
    EXPECT_EQ(buf.at(6), 1.0f);
}

TEST(GroupCtx, PerLaneSequenceNumbers)
{
    Buffer<float> buf(16, MemSpace::Global, "b");
    WorkGroupTrace t;
    t.reset(2);
    GroupCtx g(0, 2, 1, &t);
    g.load(buf, 0, 0); // lane 0, seq 0
    g.load(buf, 1, 0); // lane 0, seq 1
    g.load(buf, 2, 1); // lane 1, seq 0
    EXPECT_EQ(t.accesses[0].seq, 0u);
    EXPECT_EQ(t.accesses[1].seq, 1u);
    EXPECT_EQ(t.accesses[2].seq, 0u);
    EXPECT_EQ(t.accesses[2].lane, 1u);
}

TEST(GroupCtx, AtomicAddReturnsOldAndFlags)
{
    Buffer<int> buf(4, MemSpace::Global, "b");
    buf.at(0) = 10;
    WorkGroupTrace t;
    t.reset(1);
    GroupCtx g(0, 1, 1, &t);
    EXPECT_EQ(g.atomicAdd(buf, 0, 5, 0), 10);
    EXPECT_EQ(buf.at(0), 15);
    EXPECT_TRUE(t.accesses[0].atomic);
    EXPECT_TRUE(t.accesses[0].write);
}

TEST(GroupCtx, LoadSpanIsOneRecord)
{
    Buffer<float> buf(8, MemSpace::Global, "b");
    for (int i = 0; i < 8; ++i)
        buf.at(i) = static_cast<float>(i);
    WorkGroupTrace t;
    t.reset(1);
    GroupCtx g(0, 1, 1, &t);
    float out[4];
    g.loadSpan(buf, 2, 4, 0, out);
    ASSERT_EQ(t.accesses.size(), 1u);
    EXPECT_EQ(t.accesses[0].bytes, 16u);
    EXPECT_EQ(out[0], 2.0f);
    EXPECT_EQ(out[3], 5.0f);
}

TEST(GroupCtx, FlopsAndBranches)
{
    WorkGroupTrace t;
    t.reset(2);
    GroupCtx g(0, 2, 1, &t);
    g.flops(0, 10);
    g.flops(1, 5);
    g.branch(0, true);
    g.branch(1, false);
    EXPECT_EQ(t.totalFlops(), 15u);
    ASSERT_EQ(t.branches.size(), 2u);
    EXPECT_TRUE(t.branches[0].taken);
    EXPECT_FALSE(t.branches[1].taken);
}

TEST(GroupCtx, ScratchpadAllocationAndAccess)
{
    WorkGroupTrace t;
    t.reset(2);
    GroupCtx g(0, 2, 1, &t);
    auto local = g.allocLocal<float>(8);
    EXPECT_EQ(g.scratchBytes(), 32u);
    EXPECT_EQ(t.scratchBytes, 32u);
    local.set(g, 3, 9.0f, 0);
    EXPECT_EQ(local.get(g, 3, 1), 9.0f);
    EXPECT_EQ(t.countSpace(MemSpace::Scratchpad), 2u);
    g.barrier();
    EXPECT_EQ(t.barriers, 1u);
}

TEST(GroupCtxDeath, LaneOutOfRange)
{
    Buffer<float> buf(4, MemSpace::Global, "b");
    WorkGroupTrace t;
    t.reset(2);
    GroupCtx g(0, 2, 1, &t);
    EXPECT_DEATH(g.load(buf, 0, 2), "");
}

TEST(GroupCtxDeath, ScratchOutOfBounds)
{
    WorkGroupTrace t;
    t.reset(1);
    GroupCtx g(0, 1, 1, &t);
    auto local = g.allocLocal<int>(4);
    EXPECT_DEATH(local.get(g, 4, 0), "");
}

TEST(ItemCtx, ForwardsWithItsLane)
{
    Buffer<float> buf(8, MemSpace::Global, "b");
    WorkGroupTrace t;
    t.reset(4);
    GroupCtx g(2, 4, 1, &t);
    int visited = 0;
    forEachItem(g, [&](ItemCtx &item) {
        item.store(buf, item.localId(), static_cast<float>(visited));
        EXPECT_EQ(item.globalId(), 8u + item.localId());
        ++visited;
    });
    EXPECT_EQ(visited, 4);
    EXPECT_EQ(t.accesses.size(), 4u);
    EXPECT_EQ(t.accesses[3].lane, 3u);
}

TEST(KernelVariant, GroupsForRoundsUp)
{
    KernelVariant v;
    v.waFactor = 16;
    EXPECT_EQ(v.groupsFor(16), 1u);
    EXPECT_EQ(v.groupsFor(17), 2u);
    EXPECT_EQ(v.groupsFor(160), 10u);
}

TEST(MemSpaceNames, AllDistinct)
{
    EXPECT_STREQ(memSpaceName(MemSpace::Global), "global");
    EXPECT_STREQ(memSpaceName(MemSpace::Texture), "texture");
    EXPECT_STREQ(memSpaceName(MemSpace::Scratchpad), "scratchpad");
    EXPECT_STREQ(memSpaceName(MemSpace::Constant), "constant");
}
