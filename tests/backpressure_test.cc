/**
 * @file
 * Admission-control unit tests: bounded per-device queues under the
 * Shed and Block policies, and cancellation of a queued job behind a
 * profiling leader.
 *
 * A gating kernel (blocks on a shared atomic until the test releases
 * it) pins the single worker so queue occupancy is deterministic:
 * with the worker stuck inside a launch, the test controls exactly
 * how many jobs sit in the device queue when the next submit() runs.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"

using namespace dysel;
using namespace dysel::serve;

namespace {

constexpr std::uint32_t laneCount = 8;

/** Shared gate: the kernel's first invocation parks on it. */
struct Gate
{
    std::atomic<std::uint64_t> entered{0};
    std::atomic<bool> release{false};

    void open() { release.store(true, std::memory_order_release); }

    /** Busy-wait (with sleeps) until the kernel is parked inside. */
    void awaitEntered() const
    {
        while (entered.load(std::memory_order_acquire) == 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
    }
};

/**
 * Kernel whose first group invocation blocks until the gate opens;
 * later invocations (including re-launches after release) pass
 * straight through.
 */
kdp::KernelVariant
gatedKernel(const char *name, Gate &gate, std::int32_t marker,
            std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [&gate, marker, flops_per_unit](kdp::GroupCtx &g,
                                           const kdp::KernelArgs &args) {
        gate.entered.fetch_add(1, std::memory_order_acq_rel);
        while (!gate.release.load(std::memory_order_acquire))
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

Job
gateJob(kdp::Buffer<std::int32_t> &out, std::uint64_t units)
{
    Job job;
    job.signature = "gate";
    job.units = units;
    job.args.add(out).add(static_cast<std::int64_t>(units));
    return job;
}

} // namespace

/**
 * Shed policy: with the worker pinned and the queue at maxQueueDepth,
 * the next submit() is rejected immediately with RESOURCE_EXHAUSTED
 * -- handle already terminal, done callback already fired on the
 * submitter thread, admission.shed counted.
 */
TEST(Backpressure, ShedReturnsResourceExhaustedWhenQueueFull)
{
    // 8 units < minUnitsForProfiling: plain launches, no coalescing.
    constexpr std::uint64_t kUnits = 8;
    Gate gate;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.coalesce = false;
    cfg.maxQueueDepth = 1;
    cfg.admission = AdmissionPolicy::Shed;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([&gate](runtime::Runtime &rt) {
           rt.addKernel("gate", gatedKernel("only", gate, 7, 100));
           rt.setKernelInfo("gate", regularInfo("gate"));
       }).throwIfError();
    svc.start();

    kdp::Buffer<std::int32_t> out1(kUnits, kdp::MemSpace::Global, "bp.1");
    kdp::Buffer<std::int32_t> out2(kUnits, kdp::MemSpace::Global, "bp.2");
    kdp::Buffer<std::int32_t> out3(kUnits, kdp::MemSpace::Global, "bp.3");

    // Job 1 occupies the worker (parked inside the kernel) ...
    JobHandle h1 = svc.submit(gateJob(out1, kUnits));
    gate.awaitEntered();
    // ... job 2 fills the depth-1 queue ...
    JobHandle h2 = svc.submit(gateJob(out2, kUnits));
    // ... so job 3 must be shed, synchronously.
    std::atomic<bool> callbackFired{false};
    Job job3 = gateJob(out3, kUnits);
    job3.done = [&callbackFired](const JobResult &r) {
        EXPECT_EQ(r.status.code(),
                  support::StatusCode::ResourceExhausted);
        callbackFired.store(true, std::memory_order_release);
    };
    JobHandle h3 = svc.submit(std::move(job3));
    EXPECT_TRUE(h3.done());
    EXPECT_TRUE(callbackFired.load(std::memory_order_acquire));
    const JobResult &r3 = h3.result();
    EXPECT_EQ(r3.status.code(),
              support::StatusCode::ResourceExhausted);
    EXPECT_NE(r3.id, 0u);

    gate.open();
    EXPECT_TRUE(h1.result().ok()) << h1.result().status.toString();
    EXPECT_TRUE(h2.result().ok()) << h2.result().status.toString();
    svc.stop();

    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("jobs.submitted"), 3u);
    EXPECT_EQ(m.counterValue("jobs.completed"), 2u);
    EXPECT_EQ(m.counterValue("admission.shed"), 1u);
}

/**
 * Block policy: the same full-queue submit() parks the submitter
 * instead of rejecting, and completes once the queue drains.
 */
TEST(Backpressure, BlockParksSubmitterUntilQueueDrains)
{
    constexpr std::uint64_t kUnits = 8;
    Gate gate;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.coalesce = false;
    cfg.maxQueueDepth = 1;
    cfg.admission = AdmissionPolicy::Block;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([&gate](runtime::Runtime &rt) {
           rt.addKernel("gate", gatedKernel("only", gate, 7, 100));
           rt.setKernelInfo("gate", regularInfo("gate"));
       }).throwIfError();
    svc.start();

    kdp::Buffer<std::int32_t> out1(kUnits, kdp::MemSpace::Global, "bp.1");
    kdp::Buffer<std::int32_t> out2(kUnits, kdp::MemSpace::Global, "bp.2");
    kdp::Buffer<std::int32_t> out3(kUnits, kdp::MemSpace::Global, "bp.3");

    JobHandle h1 = svc.submit(gateJob(out1, kUnits));
    gate.awaitEntered();
    JobHandle h2 = svc.submit(gateJob(out2, kUnits));

    std::atomic<bool> submitReturned{false};
    JobHandle h3;
    std::thread submitter([&] {
        h3 = svc.submit(gateJob(out3, kUnits));
        submitReturned.store(true, std::memory_order_release);
    });
    // The queue is full and the worker is parked: submit() must still
    // be blocked after a generous grace period.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(submitReturned.load(std::memory_order_acquire));

    gate.open();
    submitter.join();
    EXPECT_TRUE(submitReturned.load(std::memory_order_acquire));
    EXPECT_TRUE(h1.result().ok());
    EXPECT_TRUE(h2.result().ok());
    EXPECT_TRUE(h3.result().ok());
    svc.stop();

    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("jobs.completed"), 3u);
    EXPECT_GE(m.counterValue("admission.blocked"), 1u);
}

/**
 * A queued job cancelled while a profiling leader holds the worker
 * must terminate as Cancelled without poisoning the leader: the
 * leader still completes, records its selection, and a later job
 * warm-starts from it.
 */
TEST(Backpressure, CancelledQueuedFollowerDoesNotPoisonLeader)
{
    // 512 units >= minUnitsForProfiling: the leader cold-misses and
    // profiles (under a coalescer lease) while parked on the gate.
    constexpr std::uint64_t kUnits = 512;
    Gate gate;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.coalesce = true;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([&gate](runtime::Runtime &rt) {
           rt.addKernel("gate", gatedKernel("slow", gate, 7, 4000));
           rt.addKernel("gate", gatedKernel("fast", gate, 7, 100));
           rt.setKernelInfo("gate", regularInfo("gate"));
       }).throwIfError();
    svc.start();

    kdp::Buffer<std::int32_t> outL(kUnits, kdp::MemSpace::Global, "bp.l");
    kdp::Buffer<std::int32_t> outF(kUnits, kdp::MemSpace::Global, "bp.f");
    kdp::Buffer<std::int32_t> outW(kUnits, kdp::MemSpace::Global, "bp.w");

    JobHandle leader = svc.submit(gateJob(outL, kUnits));
    gate.awaitEntered(); // leader is parked mid-profile
    JobHandle follower = svc.submit(gateJob(outF, kUnits));
    ASSERT_TRUE(follower.cancel());
    const JobResult &rf = follower.result();
    EXPECT_EQ(rf.status.code(), support::StatusCode::Cancelled);

    gate.open();
    const JobResult &rl = leader.result();
    EXPECT_TRUE(rl.ok()) << rl.status.toString();
    EXPECT_FALSE(rl.warmStart);
    svc.drain();

    // The leader's record survived the cancelled follower: the next
    // job is served warm from the store.
    JobHandle warm = svc.submit(gateJob(outW, kUnits));
    const JobResult &rw = warm.result();
    EXPECT_TRUE(rw.ok()) << rw.status.toString();
    EXPECT_TRUE(rw.warmStart);
    svc.stop();

    EXPECT_EQ(store.records().size(), 1u);
    EXPECT_TRUE(store.records()[0].valid);
    const auto &m = svc.metrics();
    EXPECT_EQ(m.counterValue("jobs.cancelled"), 1u);
    EXPECT_EQ(m.counterValue("coalesce.leader"), 1u);
    EXPECT_EQ(m.counterValue("coalesce.leader_failed"), 0u);
    EXPECT_GE(m.counterValue("store.hit"), 1u);
}
