/**
 * @file
 * Reproduces the §5.1 discussion: the overhead difference between
 * synchronous and asynchronous DySel when the variant spread is
 * pathological (sgemm under LC scheduling, the paper's 117x case:
 * synchronous profiling waits for the slowest schedule, async hides
 * it behind eager execution -- 8% vs <5% overhead in the paper).
 * Also reports the eager-dispatch counts on CPU vs GPU: host stream
 * query latency leaves the GPU with few or zero eager dispatches.
 */
#include <iostream>

#include "support/table.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

int
main()
{
    std::cout << "=== Sec. 5.1: sync vs async overhead under a large "
                 "variant spread ===\n\n";

    Workload w = workloads::makeSgemmLcCpu();
    std::cout << "running sgemm (" << w.variants.size()
              << " schedules, CPU)...\n";
    const DyselSeries s = runSeries(workloads::cpuFactory(), w);
    checkSeries("sgemm", s);

    support::Table table({"configuration", "relative time",
                          "overhead vs oracle", "eager chunks"});
    auto pct = [&](sim::TimeNs t) {
        return (s.rel(t) - 1.0) * 100.0;
    };
    table.row()
        .cell("oracle")
        .cell(1.0, 3)
        .cell("-")
        .cell("-");
    table.row()
        .cell("sync")
        .cell(s.rel(s.sync.elapsed), 3)
        .cell(std::to_string(pct(s.sync.elapsed)) + " %")
        .cell(s.sync.firstIteration.eagerChunks);
    table.row()
        .cell("async (best initial)")
        .cell(s.rel(s.asyncBest.elapsed), 3)
        .cell(std::to_string(pct(s.asyncBest.elapsed)) + " %")
        .cell(s.asyncBest.firstIteration.eagerChunks);
    table.row()
        .cell("async (worst initial)")
        .cell(s.rel(s.asyncWorst.elapsed), 3)
        .cell(std::to_string(pct(s.asyncWorst.elapsed)) + " %")
        .cell(s.asyncWorst.firstIteration.eagerChunks);
    table.print(std::cout);

    std::cout << "\noracle-to-worst spread: "
              << s.rel(s.oracle.worst())
              << "x (paper's sgemm spread: 117x)\n";

    // GPU eager dispatches: host query latency dominates the tiny
    // profiling phase, so async degenerates toward sync (§5.1).
    std::cout << "\n--- eager dispatch counts: CPU vs GPU ---\n";
    Workload cpu_w = workloads::makeSpmvCsrCpuLc(
        workloads::SpmvInput::Random);
    Workload gpu_w = workloads::makeSpmvCsrGpuInputDep(
        workloads::SpmvInput::Random);
    runtime::LaunchOptions async_opt;
    async_opt.orch = runtime::Orchestration::Async;
    const auto cpu_run =
        workloads::runDysel(workloads::cpuFactory(), cpu_w, async_opt);
    const auto gpu_run =
        workloads::runDysel(workloads::gpuFactory(), gpu_w, async_opt);
    std::cout << "CPU spmv-csr: " << cpu_run.firstIteration.eagerChunks
              << " eager chunks;  GPU spmv-csr: "
              << gpu_run.firstIteration.eagerChunks
              << " eager chunks\n"
              << "Paper: the GPU often sees few or even zero eager "
                 "dispatches; sync and async are nearly identical "
                 "there.\n";
    return 0;
}
