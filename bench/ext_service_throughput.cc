/**
 * @file
 * Extension bench: dispatch-path throughput under contention.
 *
 * Runs the closed-loop load generator twice on the contended
 * configuration (16 submitters, 8 devices, 4 hot signatures): once
 * with profiling coalescing off -- the pre-sharding service never
 * coalesced, so this is the baseline -- and once with it on.  With
 * coalescing, concurrent cold misses on the same (signature,
 * fingerprint, bucket) elect one profiling leader instead of each
 * paying its own micro-profiling pass, so the cold window collapses
 * and throughput rises.
 *
 * Emits BENCH_service_throughput.json next to the binary (override
 * with argv[1]); the CI perf-smoke job validates the schema with
 * tools/bench_check.  The exit code only checks invariants (all jobs
 * terminal, coalesce hits recorded), never absolute numbers.
 */
#include <fstream>
#include <iostream>
#include <string>

#include "serve/loadgen.hh"
#include "support/table.hh"

using namespace dysel;

namespace {

serve::LoadGenConfig
contendedConfig()
{
    serve::LoadGenConfig cfg;
    cfg.submitters = 16;
    cfg.devices = 8;
    cfg.signatures = 4;
    cfg.sizeClasses = 4;
    cfg.baseUnits = 128;
    // One lockstep lap over the 16 (signature, size-class) keys:
    // every phase's first touch is a fleet-wide contended cold miss.
    cfg.sweep = true;
    cfg.jobsPerSubmitter = 16;
    cfg.variants = 6;
    cfg.profileRepeats = 256;
    cfg.guard = true;
    cfg.affinity = false;
    cfg.slowFlops = 4000;
    cfg.fastFlops = 100;
    cfg.seed = 42;
    return cfg;
}

void
reportRow(support::Table &table, const char *name,
          const serve::LoadGenReport &r)
{
    table.row()
        .cell(name)
        .cell(r.jobsCompleted)
        .cell(r.jobsPerSec, 0)
        .cell(r.p50LatencyUs, 1)
        .cell(r.p99LatencyUs, 1)
        .cell(r.profiledUnitRatio, 4)
        .cell(r.coalesceHits);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath =
        argc > 1 ? argv[1] : "BENCH_service_throughput.json";

    std::cout << "=== Extension: dispatch-path throughput "
                 "(profiling coalescing) ===\n"
              << "Closed loop, 16 submitters x 8 devices, 4 hot "
                 "signatures x 4 size buckets.\n\n";

    serve::LoadGenConfig base = contendedConfig();
    base.coalesce = false;
    const serve::LoadGenReport baseline = serve::runLoadGen(base);

    serve::LoadGenConfig co = contendedConfig();
    co.coalesce = true;
    const serve::LoadGenReport coalesced = serve::runLoadGen(co);

    support::Table table({"mode", "jobs", "jobs/s", "p50 (us)",
                          "p99 (us)", "profiled ratio",
                          "coalesce hits"});
    reportRow(table, "baseline (no coalescing)", baseline);
    reportRow(table, "coalesced", coalesced);
    table.print(std::cout);

    const double speedup =
        baseline.jobsPerSec > 0.0
            ? coalesced.jobsPerSec / baseline.jobsPerSec
            : 0.0;
    std::cout << "\nspeedup: " << speedup << "x; profiled units "
              << baseline.profiledUnits << " -> "
              << coalesced.profiledUnits << "; coalesce hit rate "
              << coalesced.coalesceHitRate << "\n";

    support::Json out = support::Json::object();
    out.set("bench", support::Json("service_throughput"));
    out.set("baseline", baseline.toJson());
    out.set("coalesced", coalesced.toJson());
    out.set("speedup", support::Json(speedup));
    std::ofstream f(outPath);
    f << out.dump(2) << "\n";
    f.close();
    std::cout << "wrote " << outPath << "\n";

    const bool ok =
        baseline.jobsSubmitted
                == baseline.jobsCompleted + baseline.jobsFailed
                       + baseline.jobsShed
        && coalesced.jobsSubmitted
               == coalesced.jobsCompleted + coalesced.jobsFailed
                      + coalesced.jobsShed
        && coalesced.coalesceHits > 0
        && coalesced.profiledUnits < baseline.profiledUnits;
    return ok ? 0 : 1;
}
