/**
 * @file
 * Extension bench: dispatch-path throughput under contention.
 *
 * Runs the closed-loop load generator on the contended configuration
 * (16 submitters, 8 devices, 4 hot signatures) across five axes:
 *
 *   baseline           -- coalescing off, predictor off (the
 *                         pre-sharding service);
 *   coalesced          -- profiling coalescing on: concurrent cold
 *                         misses on the same (signature, fingerprint,
 *                         bucket) elect one profiling leader;
 *   audited            -- coalescing + the selection-quality auditor
 *                         at 2% sampling: warm hits occasionally
 *                         shadow-profile the runner-up variant to
 *                         measure realized regret.  The overhead gate
 *                         (audited jobs/s within 5% of coalesced)
 *                         lives in tools/bench_check;
 *   predict_cold       -- coalescing + a cold-started selection
 *                         predictor: winners recorded in early
 *                         buckets seed neighbouring buckets
 *                         (cross-bucket interpolation), so later
 *                         sweep phases skip profiling entirely;
 *   predict_pretrained -- the predictor enters the measured run
 *                         already trained by a warm-up sweep, so even
 *                         the first phases can hit.
 *
 * Every axis runs the same job set and must produce a byte-identical
 * output checksum -- the predictor changes who profiles, and the
 * auditor only re-executes deterministic kernels in shadow mode;
 * neither changes what a job computes.
 *
 * Emits BENCH_service_throughput.json next to the binary (override
 * with argv[1]); the CI perf-smoke job validates the schema with
 * tools/bench_check.  The exit code only checks invariants (all jobs
 * terminal, coalesce hits recorded, predictor profiled less at an
 * equal-or-better hit rate, checksums equal), never absolute numbers.
 */
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/loadgen.hh"
#include "support/table.hh"

using namespace dysel;

namespace {

serve::LoadGenConfig
contendedConfig()
{
    serve::LoadGenConfig cfg;
    cfg.submitters = 16;
    cfg.devices = 8;
    cfg.signatures = 4;
    cfg.sizeClasses = 4;
    cfg.baseUnits = 128;
    // Lockstep laps over the 16 (signature, size-class) keys: every
    // phase's first touch is a fleet-wide contended cold miss.  Four
    // laps (64 jobs each) rather than one keep a single run long
    // enough that the audited-vs-coalesced throughput ratio is a
    // measurement instead of scheduler jitter.
    cfg.sweep = true;
    cfg.jobsPerSubmitter = 64;
    cfg.variants = 6;
    cfg.profileRepeats = 256;
    cfg.guard = true;
    cfg.affinity = false;
    cfg.slowFlops = 4000;
    cfg.fastFlops = 100;
    cfg.seed = 42;
    return cfg;
}

void
reportRow(support::Table &table, const char *name,
          const serve::LoadGenReport &r)
{
    table.row()
        .cell(name)
        .cell(r.jobsCompleted)
        .cell(r.jobsPerSec, 0)
        .cell(r.p99LatencyUs, 1)
        .cell(r.profiledUnits)
        .cell(r.storeHitRate, 4)
        .cell(r.predictHits);
}

bool
allTerminal(const serve::LoadGenReport &r)
{
    return r.jobsSubmitted
           == r.jobsCompleted + r.jobsFailed + r.jobsShed;
}

/** Best-of-N by jobs/s: a single 256-job lap finishes in well under
 * a second, so per-run jitter swamps small true differences.  Every
 * run satisfies the structural invariants on its own (the simulation
 * is deterministic; only wall-clock varies), so reporting the
 * fastest run keeps the relative gates (audit overhead) meaningful
 * on shared CI machines. */
serve::LoadGenReport
bestOf(const serve::LoadGenConfig &cfg, int repeats)
{
    serve::LoadGenReport best;
    for (int i = 0; i < repeats; ++i) {
        serve::LoadGenReport r = serve::runLoadGen(cfg);
        if (i == 0 || r.jobsPerSec > best.jobsPerSec)
            best = r;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath =
        argc > 1 ? argv[1] : "BENCH_service_throughput.json";

    std::cout << "=== Extension: dispatch-path throughput "
                 "(coalescing + learned selection) ===\n"
              << "Closed loop, 16 submitters x 8 devices, 4 hot "
                 "signatures x 4 size buckets.\n\n";

    serve::LoadGenConfig base = contendedConfig();
    base.coalesce = false;
    const serve::LoadGenReport baseline = bestOf(base, 3);

    // The coalesced and audited axes run as interleaved pairs: each
    // pair shares the machine conditions of one moment in time, so
    // the per-pair jobs/s ratio is far more stable than any
    // comparison of two independently timed runs, and the median
    // over five pairs shrugs off the odd descheduled outlier.  The
    // reported axes are each pair-member's best run.
    serve::LoadGenConfig co = contendedConfig();
    co.coalesce = true;
    serve::LoadGenConfig au = contendedConfig();
    au.coalesce = true;
    au.auditRate = 0.02;
    serve::LoadGenReport coalesced;
    serve::LoadGenReport audited;
    std::vector<double> ratios;
    for (int i = 0; i < 5; ++i) {
        serve::LoadGenReport c = serve::runLoadGen(co);
        serve::LoadGenReport a = serve::runLoadGen(au);
        if (i == 0 || c.jobsPerSec > coalesced.jobsPerSec)
            coalesced = c;
        if (i == 0 || a.jobsPerSec > audited.jobsPerSec)
            audited = a;
        ratios.push_back(
            c.jobsPerSec > 0 ? a.jobsPerSec / c.jobsPerSec : 0.0);
    }
    std::sort(ratios.begin(), ratios.end());
    const double auditRatio = ratios[ratios.size() / 2];

    serve::LoadGenConfig pc = contendedConfig();
    pc.coalesce = true;
    pc.predict = true;
    const serve::LoadGenReport predictCold = bestOf(pc, 3);

    serve::LoadGenConfig pp = contendedConfig();
    pp.coalesce = true;
    pp.predict = true;
    pp.pretrainLaps = 1;
    const serve::LoadGenReport predictTrained = bestOf(pp, 3);

    support::Table table({"mode", "jobs", "jobs/s", "p99 (us)",
                          "profiled units", "hit rate",
                          "predict hits"});
    reportRow(table, "baseline (no coalescing)", baseline);
    reportRow(table, "coalesced", coalesced);
    reportRow(table, "audited (2% sampling)", audited);
    reportRow(table, "predict (cold start)", predictCold);
    reportRow(table, "predict (pretrained)", predictTrained);
    table.print(std::cout);

    const double speedup =
        baseline.jobsPerSec > 0.0
            ? coalesced.jobsPerSec / baseline.jobsPerSec
            : 0.0;
    std::cout << "\nspeedup (coalescing): " << speedup
              << "x; profiled units " << baseline.profiledUnits
              << " -> " << coalesced.profiledUnits
              << " (coalesce) -> " << predictCold.profiledUnits
              << " (predict cold) -> " << predictTrained.profiledUnits
              << " (predict pretrained)\n"
              << "audit at 2% sampling: " << audited.auditSamples
              << " samples, mean regret " << audited.auditMeanRegret
              << ", throughput ratio " << auditRatio
              << "x of coalesced (median of 5 interleaved pairs)\n";

    support::Json out = support::Json::object();
    out.set("bench", support::Json("service_throughput"));
    out.set("baseline", baseline.toJson());
    out.set("coalesced", coalesced.toJson());
    out.set("audited", audited.toJson());
    out.set("predict_cold", predictCold.toJson());
    out.set("predict_pretrained", predictTrained.toJson());
    out.set("speedup", support::Json(speedup));
    out.set("audit_throughput_ratio", support::Json(auditRatio));
    std::ofstream f(outPath);
    f << out.dump(2) << "\n";
    f.close();
    std::cout << "wrote " << outPath << "\n";

    const bool checksumsEqual =
        baseline.outputChecksum == coalesced.outputChecksum
        && baseline.outputChecksum == audited.outputChecksum
        && baseline.outputChecksum == predictCold.outputChecksum
        && baseline.outputChecksum == predictTrained.outputChecksum;
    const bool ok =
        allTerminal(baseline) && allTerminal(coalesced)
        && allTerminal(audited) && allTerminal(predictCold)
        && allTerminal(predictTrained)
        && coalesced.coalesceHits > 0
        // Auditing must actually sample at 2%, and must only ever
        // run in the axis that asked for it.
        && audited.auditSamples > 0 && coalesced.auditSamples == 0
        && coalesced.profiledUnits < baseline.profiledUnits
        // The predictor must skip profiling the coalescer alone
        // could not, at an equal-or-better warm-start rate...
        && predictCold.predictHits > 0
        && predictCold.profiledUnits < coalesced.profiledUnits
        && predictCold.storeHitRate >= coalesced.storeHitRate
        // ...pretraining must not profile more than cold start...
        && predictTrained.profiledUnits <= predictCold.profiledUnits
        // ...and selection policy must never change job outputs.
        && checksumsEqual;
    if (!ok)
        std::cout << "invariant check FAILED (checksums "
                  << (checksumsEqual ? "equal" : "DIFFER") << ")\n";
    return ok ? 0 : 1;
}
