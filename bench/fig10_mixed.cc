/**
 * @file
 * Reproduces Fig. 10: DySel under mixed compile-time optimizations
 * (tiling, coarsening, scratchpad staging, unrolling, prefetching,
 * texture placement) for cutcp, sgemm, spmv-jds, and stencil, on both
 * the CPU (panel a) and the GPU (panel b).
 *
 * Paper shape: on the CPU the naive base versions win everywhere
 * (scratchpad tiling costs ~1.23x on average); on the GPU DySel picks
 * the optimum except for spmv-jds, where it takes the second-best
 * variant at ~0.8% degradation.
 */
#include <iostream>

#include "support/table.hh"
#include "workloads/cutcp.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

namespace {

void
panel(const char *title, bool gpu)
{
    std::cout << "--- Fig. 10" << (gpu ? "b (GPU)" : "a (CPU)") << ": "
              << title << " ---\n";

    struct Row
    {
        const char *name;
        Workload w;
    };
    std::vector<Row> rows;
    rows.push_back({"cutcp", workloads::makeCutcpMixed()});
    rows.push_back({"sgemm", workloads::makeSgemmMixed()});
    rows.push_back({"spmv-jds", gpu ? workloads::makeSpmvJdsGpuMixed()
                                    : workloads::makeSpmvJdsCpuMixed()});
    rows.push_back({"stencil", workloads::makeStencilMixed()});

    const DeviceFactory factory =
        gpu ? workloads::gpuFactory() : workloads::cpuFactory();

    support::Table table({"benchmark", "Oracle", "Sync", "Async(best)",
                          "Async(worst)", "Worst"});
    std::vector<std::vector<double>> columns(5);
    for (auto &row : rows) {
        std::cout << "running " << row.name << "...\n";
        const DyselSeries s = runSeries(factory, row.w);
        checkSeries(row.name, s);
        const double values[5] = {
            1.0,
            s.rel(s.sync.elapsed),
            s.rel(s.asyncBest.elapsed),
            s.rel(s.asyncWorst.elapsed),
            s.rel(s.oracle.worst()),
        };
        table.row().cell(row.name);
        for (int c = 0; c < 5; ++c) {
            table.cell(values[c], 3);
            columns[c].push_back(values[c]);
        }
        std::cout << "  best variant: "
                  << s.oracle.runs[s.oracle.bestIndex].name
                  << "; dysel-sync selected '"
                  << s.sync.firstIteration.selectedName << "'\n";
    }
    geoMeanRow(table, columns);
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 10: DySel with mixed compile-time "
                 "optimizations ===\n"
              << "relative execution time over oracle, lower is "
                 "better\n\n";
    panel("mixed optimizations on CPU", false);
    panel("mixed optimizations on GPU", true);
    std::cout << "Paper: base versions win on CPU (scratchpad tiling "
                 "hurts); on GPU DySel is optimal except spmv-jds "
                 "(second best, ~0.8% off).\n";
    return 0;
}
