/**
 * @file
 * Ablation: the space/time trade-off among the three productive
 * profiling modes on the same (regular) workload, plus the
 * correctness boundary -- the histogram kernel, whose work-groups
 * update overlapping bins atomically, is only correct under swap.
 */
#include <iostream>

#include "support/table.hh"
#include "workloads/histogram.hh"
#include "workloads/stencil.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

int
main()
{
    std::cout << "=== Ablation: profiling mode choice on one workload "
                 "(stencil, CPU) ===\n\n";

    const auto oracle = [] {
        Workload w = workloads::makeStencilMixed();
        return workloads::runOracle(workloads::cpuFactory(), w);
    }();

    support::Table table({"mode", "relative time", "extra bytes",
                          "productive units", "profiled units",
                          "correct"});
    for (auto mode : {runtime::ProfilingMode::Fully,
                      runtime::ProfilingMode::Hybrid,
                      runtime::ProfilingMode::Swap}) {
        Workload w = workloads::makeStencilMixed();
        runtime::LaunchOptions opt;
        opt.mode = mode;
        opt.modeExplicit = true;
        opt.orch = runtime::Orchestration::Sync;
        const auto run =
            workloads::runDysel(workloads::cpuFactory(), w, opt);
        table.row()
            .cell(compiler::profilingModeName(mode))
            .cell(workloads::relative(run.elapsed, oracle.best()), 3)
            .cell(run.firstIteration.extraBytes)
            .cell(run.firstIteration.productiveUnits)
            .cell(run.firstIteration.profiledUnits)
            .cell(run.ok ? "yes" : "NO");
    }
    table.print(std::cout);
    std::cout
        << "\nTakeaway: fully-productive is cheapest when applicable "
           "(all profiled work contributes, zero copies); hybrid trades "
           "K-1 sandboxes for irregular-workload fairness; swap doubles "
           "down on space for full generality.\n";

    std::cout << "\n--- correctness boundary: overlapping atomic "
                 "outputs ---\n";
    support::Table hist_table({"mode", "correct"});
    for (auto mode : {runtime::ProfilingMode::Fully,
                      runtime::ProfilingMode::Hybrid,
                      runtime::ProfilingMode::Swap}) {
        Workload w = workloads::makeHistogram();
        w.iterations = 1;
        runtime::LaunchOptions opt;
        opt.mode = mode;
        opt.modeExplicit = true;
        const auto run =
            workloads::runDysel(workloads::cpuFactory(), w, opt);
        hist_table.row()
            .cell(compiler::profilingModeName(mode))
            .cell(run.ok ? "yes" : "NO (overlapping updates lost)");
    }
    hist_table.print(std::cout);
    std::cout << "\nThe side-effect analysis (§3.4) restricts such "
                 "kernels to swap automatically.\n";
    return 0;
}
