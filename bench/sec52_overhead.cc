/**
 * @file
 * Reproduces the §5.2 overhead study: iterative benchmarks normally
 * profile only their first launch; re-enabling profiling on *every*
 * iteration exposes the raw micro-profiling cost.  The paper observes
 * small overheads for most benchmarks but large ones for the spmv
 * family, whose per-iteration work is close to the kernel launch
 * overhead; it also reports reduced selection accuracy (~95%) under
 * system noise for tiny tasks, recoverable by profiling each variant
 * more than once.
 */
#include <iostream>

#include "dysel/runtime.hh"
#include "sim/cpu/cpu_device.hh"
#include "support/table.hh"
#include "workloads/kmeans.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

namespace {

void
overheadRow(support::Table &table, const char *name, Workload w,
            const DeviceFactory &factory)
{
    std::cout << "running " << name << "...\n";
    const auto oracle = workloads::runOracle(factory, w);
    runtime::LaunchOptions opt;
    const auto first_only = workloads::runDysel(factory, w, opt, false);
    const auto every_iter = workloads::runDysel(factory, w, opt, true);

    auto pct = [&](sim::TimeNs t) {
        return (workloads::relative(t, oracle.best()) - 1.0) * 100.0;
    };
    table.row()
        .cell(name)
        .cell(std::uint64_t{w.iterations})
        .cell(pct(first_only.elapsed), 1)
        .cell(pct(every_iter.elapsed), 1);
}

} // namespace

int
main()
{
    std::cout << "=== Sec. 5.2: profiling overhead, first-iteration vs "
                 "every-iteration ===\n\n";

    support::Table table({"benchmark", "iterations",
                          "overhead, first-only (%)",
                          "overhead, every-iteration (%)"});
    overheadRow(table, "spmv-jds (CPU)", workloads::makeSpmvJdsCpuLc(),
                workloads::cpuFactory());
    overheadRow(table, "stencil (CPU)", workloads::makeStencilLcCpu(),
                workloads::cpuFactory());
    overheadRow(table, "spmv-csr random (CPU)",
                workloads::makeSpmvCsrCpuLc(workloads::SpmvInput::Random),
                workloads::cpuFactory());
    overheadRow(table, "kmeans (CPU)", workloads::makeKmeansLcCpu(),
                workloads::cpuFactory());
    overheadRow(table, "spmv-csr random (GPU)",
                workloads::makeSpmvCsrGpuInputDep(
                    workloads::SpmvInput::Random),
                workloads::gpuFactory());
    overheadRow(table, "spmv-jds (GPU)",
                workloads::makeSpmvJdsGpuMixed(),
                workloads::gpuFactory());
    overheadRow(table, "stencil (GPU)", workloads::makeStencilMixed(),
                workloads::gpuFactory());
    table.print(std::cout);

    std::cout << "\nPaper: per-iteration profiling costs little for "
                 "stencil-like kernels but tens of percent for the spmv "
                 "family, whose iterations are launch-overhead sized.\n";

    // ---- Selection accuracy under measurement noise ----------------
    // Two variants a true 3% apart, measured on tiny tasks whose
    // per-task noise is much larger than that: single-shot profiling
    // is close to a coin flip; repeating the profiling executions
    // (first repeat warms the caches, later ones are averaged)
    // recovers accuracy at extra profiling cost (§5.2).
    std::cout << "\n--- selection accuracy under system noise "
                 "(3% variant margin, tiny tasks, CPU) ---\n";
    const int trials = 40;
    support::Table acc({"profile repeats", "correct selections",
                        "accuracy (%)"});
    for (unsigned repeats : {1u, 2u, 4u, 8u}) {
        int correct = 0;
        for (int t = 0; t < trials; ++t) {
            sim::CpuConfig cfg;
            cfg.noiseSigma = 0.5;
            cfg.seed = 0x900d + static_cast<unsigned>(t);
            sim::CpuDevice device(cfg);
            runtime::Runtime rt(device);

            auto make = [](const char *name, unsigned flops) {
                kdp::KernelVariant v;
                v.name = name;
                v.groupSize = 16;
                v.sandboxIndex = {0};
                v.fn = [flops](kdp::GroupCtx &g,
                               const kdp::KernelArgs &args) {
                    auto &out = args.buf<float>(0);
                    kdp::forEachItem(g, [&](kdp::ItemCtx &item) {
                        item.store(out, item.globalId(), 1.0f);
                        item.flops(flops);
                    });
                };
                return v;
            };
            rt.addKernel("noisy", make("fast", 1000));
            rt.addKernel("noisy", make("slow", 1030)); // 3% apart

            kdp::Buffer<float> out(16 * 2048, kdp::MemSpace::Global,
                                   "out");
            kdp::KernelArgs args;
            args.add(out);
            runtime::LaunchOptions opt;
            opt.profileRepeats = repeats;
            opt.orch = runtime::Orchestration::Sync;
            const auto report =
                rt.launchKernel("noisy", 2048, args, opt);
            correct += report.selectedName == "fast";
        }
        acc.row()
            .cell(std::uint64_t{repeats})
            .cell(static_cast<std::uint64_t>(correct))
            .cell(100.0 * correct / trials, 1);
    }
    acc.print(std::cout);
    std::cout << "\nPaper: ~95% accuracy for noisy tiny-task profiling, "
                 "recoverable by increasing executions per kernel at "
                 "extra profiling cost.\n";
    return 0;
}
