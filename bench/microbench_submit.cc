/**
 * @file
 * Submission-path microbench: batched vs unbatched throughput by size
 * class (DESIGN §10).
 *
 * Runs the closed-loop load generator over a sweep of size classes,
 * each twice on identical job sets: batch-off (every job a solo
 * launch) and batch-on (burst submission through submitMany() plus
 * fused launches bounded by --max-batch/--batch-window).  The win
 * comes from amortization: one store consult, one device submit, and
 * one scheduling round-trip serve a whole batch, so the smallest
 * size class -- where per-launch overhead dominates the actual work
 * -- must speed up the most.  Each mode takes the best of a few
 * repetitions so a CI noise spike cannot fake a regression.
 *
 * Emits BENCH_batch_throughput.json next to the binary (override
 * with argv[1]); the CI perf-smoke job gates on tools/bench_check:
 * the smallest class must reach >= 2x jobs/s, and every class's
 * batched checksum must equal its unbatched one (fusion must never
 * change what a job computes).
 */
#include <algorithm>
#include <array>
#include <fstream>
#include <iostream>
#include <string>

#include "serve/loadgen.hh"
#include "support/table.hh"

using namespace dysel;

namespace {

constexpr std::size_t kMaxBatch = 16;
constexpr sim::TimeNs kWindowNs = 200'000;
constexpr std::uint64_t kBurst = 16;
constexpr int kRepeats = 3;

/**
 * One submitter, one device, one signature: a strict closed loop that
 * isolates the submission path itself.  Anything more concurrent
 * measures the scheduler of the machine running the bench (CI
 * runners have few cores) instead of the code under test.
 */
serve::LoadGenConfig
classConfig(std::uint64_t units, std::uint64_t jobs)
{
    serve::LoadGenConfig cfg;
    cfg.submitters = 1;
    cfg.devices = 1;
    cfg.signatures = 1;
    cfg.sizeClasses = 1;
    cfg.baseUnits = units;
    cfg.jobsPerSubmitter = jobs;
    cfg.burst = kBurst;
    cfg.slowFlops = 4000;
    cfg.fastFlops = 100;
    cfg.seed = 42;
    return cfg;
}

/** Best-of-kRepeats run (highest jobs/s; identical outputs). */
serve::LoadGenReport
bestOf(const serve::LoadGenConfig &cfg)
{
    serve::LoadGenReport best;
    for (int r = 0; r < kRepeats; ++r) {
        serve::LoadGenReport rep = serve::runLoadGen(cfg);
        if (r == 0 || rep.jobsPerSec > best.jobsPerSec)
            best = std::move(rep);
    }
    return best;
}

bool
allTerminal(const serve::LoadGenReport &r)
{
    return r.jobsSubmitted
           == r.jobsCompleted + r.jobsFailed + r.jobsShed;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string outPath =
        argc > 1 ? argv[1] : "BENCH_batch_throughput.json";

    std::cout << "=== Microbench: submission path, batched vs "
                 "unbatched ===\n"
              << "Strict closed loop, 1 submitter x 1 device, burst "
              << kBurst << ", batch " << kMaxBatch << " jobs / "
              << kWindowNs << " ns window.\n\n";

    // Smallest first: bench_check gates on classes[0].  Job counts
    // scale down with size so every class runs a comparable wall
    // time.
    const std::array<std::uint64_t, 4> sizeClasses = {8, 64, 512,
                                                      4096};
    const std::array<std::uint64_t, 4> classJobs = {3200, 3200, 1600,
                                                    400};

    support::Table table({"units", "off jobs/s", "on jobs/s",
                          "speedup", "fused launches", "avg batch",
                          "checksums"});
    support::Json classes = support::Json::array();
    double smallestSpeedup = 0.0;
    bool ok = true;

    for (std::size_t c = 0; c < sizeClasses.size(); ++c) {
        const std::uint64_t units = sizeClasses[c];

        serve::LoadGenConfig off = classConfig(units, classJobs[c]);
        const serve::LoadGenReport offRep = bestOf(off);

        serve::LoadGenConfig on = classConfig(units, classJobs[c]);
        on.maxBatchJobs = kMaxBatch;
        on.batchWindowNs = kWindowNs;
        const serve::LoadGenReport onRep = bestOf(on);

        const double speedup = offRep.jobsPerSec > 0.0
                                   ? onRep.jobsPerSec / offRep.jobsPerSec
                                   : 0.0;
        const bool checksumsEqual =
            offRep.outputChecksum == onRep.outputChecksum;
        if (c == 0)
            smallestSpeedup = speedup;

        table.row()
            .cell(units)
            .cell(offRep.jobsPerSec, 0)
            .cell(onRep.jobsPerSec, 0)
            .cell(speedup, 2)
            .cell(onRep.batchLaunches)
            .cell(onRep.avgBatchSize, 2)
            .cell(checksumsEqual ? "equal" : "DIFFER");

        support::Json cls = support::Json::object();
        cls.set("units", support::Json(units));
        cls.set("off", offRep.toJson());
        cls.set("on", onRep.toJson());
        cls.set("speedup", support::Json(speedup));
        cls.set("checksums_equal", support::Json(checksumsEqual));
        classes.push(std::move(cls));

        ok = ok && allTerminal(offRep) && allTerminal(onRep)
             && checksumsEqual && offRep.batchLaunches == 0
             && onRep.batchJobs > 0;
    }
    table.print(std::cout);
    std::cout << "\nsmallest class speedup: " << smallestSpeedup
              << "x (gate: >= 2x via bench_check)\n";

    support::Json out = support::Json::object();
    out.set("bench", support::Json("batch_throughput"));
    support::Json limits = support::Json::object();
    limits.set("max_jobs",
               support::Json(static_cast<std::uint64_t>(kMaxBatch)));
    limits.set("window_ns",
               support::Json(static_cast<std::uint64_t>(kWindowNs)));
    limits.set("burst", support::Json(kBurst));
    out.set("batch", std::move(limits));
    out.set("classes", std::move(classes));
    out.set("smallest_class_speedup", support::Json(smallestSpeedup));
    std::ofstream f(outPath);
    f << out.dump(2) << "\n";
    f.close();
    std::cout << "wrote " << outPath << "\n";

    // The exit code checks invariants only (all jobs terminal, no
    // stray fusion with batching off, fusion active with batching on,
    // equal checksums); the 2x throughput gate lives in bench_check
    // so a plain run of the binary stays usable on loaded machines.
    if (!ok)
        std::cout << "invariant check FAILED\n";
    return ok ? 0 : 1;
}
