/**
 * @file
 * Reproduces Table 1: the properties of the three productive
 * profiling modes -- how many of the K profiled portions contribute
 * to the final output, how much extra space each mode allocates, and
 * whether asynchronous orchestration is supported.  Measured from
 * live runs rather than asserted.
 */
#include <iostream>

#include "dysel/runtime.hh"
#include "sim/cpu/cpu_device.hh"
#include "support/table.hh"
#include "workloads/histogram.hh"
#include "workloads/stencil.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

namespace {

struct ModeResult
{
    std::uint64_t productivePortions; ///< of K profiled portions
    std::uint64_t extraCopies;        ///< output-buffer copies
    bool asyncSupported;
};

ModeResult
measure(runtime::ProfilingMode mode)
{
    Workload w = workloads::makeStencilMixed();
    w.iterations = 1;
    const std::uint64_t out_bytes =
        w.args.bufBase(1).sizeBytes(); // stencil output buffer
    const auto k = w.variants.size();

    runtime::LaunchOptions opt;
    opt.mode = mode;
    opt.modeExplicit = true;
    opt.orch = runtime::Orchestration::Async;
    const auto run = workloads::runDysel(workloads::cpuFactory(), w, opt);
    if (!run.ok)
        std::cerr << "WARNING: wrong output under "
                  << compiler::profilingModeName(mode) << "\n";

    ModeResult r;
    const std::uint64_t slice = run.firstIteration.productiveUnits
                                / (mode == runtime::ProfilingMode::Fully
                                       ? k
                                       : 1);
    r.productivePortions = run.firstIteration.productiveUnits / slice;
    r.extraCopies = run.firstIteration.extraBytes / out_bytes;
    r.asyncSupported =
        run.firstIteration.orch == runtime::Orchestration::Async;
    return r;
}

} // namespace

int
main()
{
    std::cout << "=== Table 1: properties of the productive profiling "
                 "modes ===\n"
              << "(measured on the 3-variant stencil workload, CPU)\n\n";

    support::Table table({"profiling method", "productive portions",
                          "extra space (output copies)",
                          "async support"});

    const struct
    {
        runtime::ProfilingMode mode;
        const char *name;
    } modes[] = {
        {runtime::ProfilingMode::Fully, "fully-productive"},
        {runtime::ProfilingMode::Hybrid, "hybrid-based partial"},
        {runtime::ProfilingMode::Swap, "swap-based partial"},
    };
    for (const auto &m : modes) {
        const ModeResult r = measure(m.mode);
        table.row()
            .cell(m.name)
            .cell(r.productivePortions)
            .cell(r.extraCopies)
            .cell(r.asyncSupported ? "yes" : "no");
    }
    table.print(std::cout);

    std::cout << "\nPaper Table 1: fully-productive contributes K "
                 "portions with 0 extra space and async support; hybrid "
                 "contributes 1 with <= K-1 copies and async support; "
                 "swap contributes 1 with <= K copies and no async.\n";

    // Swap is not merely cheaper bookkeeping -- for kernels with
    // overlapping atomic outputs it is the only correct mode.
    Workload hist = workloads::makeHistogram();
    const auto swap_run = workloads::runDysel(
        workloads::cpuFactory(), hist, runtime::LaunchOptions{});
    std::cout << "\nhistogram (global atomics): compiler analyses chose "
              << compiler::profilingModeName(swap_run.firstIteration.mode)
              << ", result "
              << (swap_run.ok ? "correct" : "WRONG") << "\n";
    return 0;
}
