/**
 * @file
 * Shared harness code for the figure-reproduction bench binaries.
 *
 * Every paper figure reports *relative execution time over the
 * oracle* (the best pure variant); this header provides the standard
 * series -- Oracle / Sync / Async(best initial) / Async(worst
 * initial) / Worst -- and the table plumbing, so each bench binary
 * only adds its figure-specific columns (LC, PORPLE, ...).
 */
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "support/stats.hh"
#include "support/table.hh"
#include "workloads/devices.hh"
#include "workloads/evaluate.hh"

namespace dysel {
namespace bench {

using workloads::DeviceFactory;
using workloads::DyselRun;
using workloads::OracleResult;
using workloads::Workload;

/** The standard DySel series of one benchmark row. */
struct DyselSeries
{
    OracleResult oracle;
    DyselRun sync;
    DyselRun asyncBest;  ///< async with the best variant as Kdefault
    DyselRun asyncWorst; ///< async with the worst variant as Kdefault

    double rel(sim::TimeNs t) const
    {
        return workloads::relative(t, oracle.best());
    }
};

/** Run oracle + the three DySel configurations on @p w. */
inline DyselSeries
runSeries(const DeviceFactory &factory, Workload &w)
{
    DyselSeries s;
    s.oracle = workloads::runOracle(factory, w);

    runtime::LaunchOptions sync_opt;
    sync_opt.orch = runtime::Orchestration::Sync;
    s.sync = workloads::runDysel(factory, w, sync_opt);

    runtime::LaunchOptions best_opt;
    best_opt.orch = runtime::Orchestration::Async;
    best_opt.initialVariant = static_cast<int>(s.oracle.bestIndex);
    s.asyncBest = workloads::runDysel(factory, w, best_opt);

    runtime::LaunchOptions worst_opt;
    worst_opt.orch = runtime::Orchestration::Async;
    worst_opt.initialVariant = static_cast<int>(s.oracle.worstIndex);
    s.asyncWorst = workloads::runDysel(factory, w, worst_opt);
    return s;
}

/** Warn loudly if any run produced a wrong result. */
inline void
checkSeries(const std::string &name, const DyselSeries &s)
{
    for (const auto &run : s.oracle.runs)
        if (!run.ok)
            std::cerr << "WARNING: " << name << " variant " << run.name
                      << " produced a wrong result\n";
    for (const DyselRun *run : {&s.sync, &s.asyncBest, &s.asyncWorst})
        if (!run->ok)
            std::cerr << "WARNING: " << name
                      << " DySel run produced a wrong result\n";
}

/** Append a GeoMean row from per-column samples. */
inline void
geoMeanRow(support::Table &table,
           const std::vector<std::vector<double>> &columns)
{
    table.row().cell("GeoMean");
    for (const auto &col : columns)
        table.cell(support::geoMean(col), 3);
}

} // namespace bench
} // namespace dysel
