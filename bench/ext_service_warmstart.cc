/**
 * @file
 * Extension bench: cold vs. warm start of the dispatch service.
 *
 * The persistent selection store eliminates re-profiling across
 * service restarts (the production pattern: a fleet of dyseld
 * processes sharing one selection database).  This bench runs the
 * same workload mix through a fresh two-device service twice -- once
 * against an empty store (cold: every key micro-profiles) and once
 * against the store the cold run populated (warm: every key is served
 * from the store) -- and reports the profiling work and device time
 * saved.
 */
#include <iostream>
#include <memory>
#include <vector>

#include "serve/dispatch_service.hh"
#include "support/table.hh"
#include "workloads/devices.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/stencil.hh"

using namespace dysel;

namespace {

struct PhaseStats
{
    std::uint64_t profiledUnits = 0;
    std::uint64_t warmJobs = 0;
    std::uint64_t jobs = 0;
    sim::TimeNs deviceTime = 0;
};

std::vector<workloads::Workload>
makeMix()
{
    std::vector<workloads::Workload> mix;
    mix.push_back(workloads::makeSgemmMixed(256, 256, 256));
    mix.push_back(workloads::makeSgemmMixed(384, 384, 384));
    mix.push_back(
        workloads::makeSpmvCsrCpuInputDep(workloads::SpmvInput::Random));
    mix.push_back(workloads::makeSpmvCsrCpuInputDep(
        workloads::SpmvInput::Diagonal));
    mix.push_back(workloads::makeStencilMixed());
    return mix;
}

/** Run the mix through a fresh service bound to @p store. */
PhaseStats
runPhase(store::SelectionStore &store)
{
    serve::DispatchService svc(store);
    svc.addDevice(workloads::cpuFactory()());
    svc.addDevice(workloads::gpuFactory()());
    svc.start();

    auto mix = makeMix();
    std::vector<serve::JobHandle> handles;
    handles.reserve(mix.size());
    for (auto &w : mix) {
        serve::Job job;
        job.signature = w.signature;
        job.units = w.units;
        job.args = w.args;
        job.ensureRegistered = [&w](runtime::Runtime &rt) {
            rt.removeKernel(w.signature);
            w.registerWith(rt);
        };
        handles.push_back(svc.submit(std::move(job)));
    }
    PhaseStats stats;
    for (const auto &h : handles) {
        const serve::JobResult &r = h.result();
        stats.jobs++;
        stats.profiledUnits += r.report.profiledUnits;
        stats.warmJobs += r.warmStart ? 1 : 0;
        stats.deviceTime += r.deviceTimeNs;
    }
    svc.stop();
    return stats;
}

} // namespace

int
main()
{
    std::cout << "=== Extension: service warm start from the selection "
                 "store ===\n"
              << "Same workload mix, fresh service + devices each "
                 "phase; only the store persists.\n\n";

    store::SelectionStore store;
    const PhaseStats cold = runPhase(store);
    const PhaseStats warm = runPhase(store);

    support::Table table({"phase", "jobs", "warm-served",
                          "profiled units", "device time (ms)"});
    table.row()
        .cell("cold (empty store)")
        .cell(cold.jobs)
        .cell(cold.warmJobs)
        .cell(cold.profiledUnits)
        .cell(cold.deviceTime / 1e6, 3);
    table.row()
        .cell("warm (persisted store)")
        .cell(warm.jobs)
        .cell(warm.warmJobs)
        .cell(warm.profiledUnits)
        .cell(warm.deviceTime / 1e6, 3);
    table.print(std::cout);

    std::cout << "\nwarm start removed "
              << cold.profiledUnits - warm.profiledUnits
              << " profiled units; device time "
              << (cold.deviceTime > 0
                      ? 100.0
                            * (1.0
                               - static_cast<double>(warm.deviceTime)
                                     / static_cast<double>(
                                         cold.deviceTime))
                      : 0.0)
              << "% lower\n";
    return warm.profiledUnits == 0 && warm.warmJobs == warm.jobs ? 0 : 1;
}
