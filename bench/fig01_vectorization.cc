/**
 * @file
 * Reproduces Fig. 1: performance of the Intel CPU OpenCL stack's
 * vectorization heuristic vs. the scalar / 4-way / 8-way variants of
 * sgemm and spmv-jds, reported as speedup over the heuristic's choice
 * (higher is better).
 *
 * Paper shape: the heuristic is suboptimal on both benchmarks -- it
 * picks 4-way for the regular sgemm (8-way is ~2.13x better) and
 * 8-way for the divergent spmv-jds (4-way is ~1.24x better).
 */
#include <iostream>

#include "baselines/intel_vectorizer.hh"
#include "support/table.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_jds.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

namespace {

void
runOne(support::Table &table, const char *name, Workload w)
{
    const unsigned heuristic_width =
        baselines::intelVectorWidth(w.info);
    const std::string heuristic_name =
        heuristic_width == 1 ? "scalar"
                             : std::to_string(heuristic_width) + "-way";
    const int heuristic_idx = w.variantIndex(heuristic_name);
    if (heuristic_idx < 0)
        support::fatal("heuristic picked unknown variant %s",
                       heuristic_name.c_str());

    const auto oracle = workloads::runOracle(workloads::cpuFactory(), w);
    const double heuristic_time = static_cast<double>(
        oracle.runs[static_cast<std::size_t>(heuristic_idx)].elapsed);

    table.row().cell(name).cell(heuristic_name);
    for (const auto &run : oracle.runs)
        table.cell(heuristic_time / static_cast<double>(run.elapsed), 3);

    const auto &best = oracle.runs[oracle.bestIndex];
    std::cout << "  " << name << ": heuristic chose " << heuristic_name
              << ", best is " << best.name << " ("
              << heuristic_time / static_cast<double>(best.elapsed)
              << "x better)\n";
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 1: Intel vectorization heuristic vs explicit "
                 "widths (CPU) ===\n"
              << "speedup over heuristic, higher is better\n\n";

    support::Table table({"benchmark", "heuristic-pick", "scalar",
                          "4-way", "8-way"});
    runOne(table, "sgemm", workloads::makeSgemmVectorCpu());
    runOne(table, "spmv-jds", workloads::makeSpmvJdsVectorCpu());

    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nPaper: heuristic falls short of the best width by "
                 "2.13x (sgemm) and 1.24x (spmv-jds).\n";
    return 0;
}
