/**
 * @file
 * Reproduces Fig. 8: DySel vs. locality-centric (LC) scheduling on
 * the CPU for cutcp, kmeans, sgemm, spmv-jds, spmv-csr (random and
 * diagonal), and stencil.  Series: Oracle / Sync / Async(best
 * initial) / Async(worst initial) / LC / Worst, as relative execution
 * time over the oracle (lower is better), plus the GeoMean row.
 *
 * Paper shape: DySel near-oracle everywhere (<= 8% worst case); LC
 * correct except on spmv-csr with the diagonal matrix; the
 * oracle-to-worst gap is large (sgemm is the pathological case).
 */
#include <iostream>

#include "baselines/lc_scheduler.hh"
#include "support/table.hh"
#include "workloads/cutcp.hh"
#include "workloads/kmeans.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

int
main()
{
    std::cout << "=== Fig. 8: DySel vs LC scheduling on CPU ===\n"
              << "relative execution time over oracle, lower is "
                 "better\n\n";

    struct Row
    {
        const char *name;
        Workload w;
    };
    std::vector<Row> rows;
    rows.push_back({"cutcp", workloads::makeCutcpLcCpu()});
    rows.push_back({"kmeans", workloads::makeKmeansLcCpu()});
    rows.push_back({"sgemm", workloads::makeSgemmLcCpu()});
    rows.push_back({"spmv-jds", workloads::makeSpmvJdsCpuLc()});
    rows.push_back({"spmv-csr(random)",
                    workloads::makeSpmvCsrCpuLc(
                        workloads::SpmvInput::Random)});
    rows.push_back({"spmv-csr(diagonal)",
                    workloads::makeSpmvCsrCpuLc(
                        workloads::SpmvInput::Diagonal)});
    rows.push_back({"stencil", workloads::makeStencilLcCpu()});

    support::Table table({"benchmark", "Oracle", "Sync", "Async(best)",
                          "Async(worst)", "LC", "Worst"});
    std::vector<std::vector<double>> columns(6);

    for (auto &row : rows) {
        std::cout << "running " << row.name << " ("
                  << row.w.variants.size() << " schedules)...\n";
        const DyselSeries s = runSeries(workloads::cpuFactory(), row.w);
        checkSeries(row.name, s);

        const std::size_t lc_pick =
            baselines::lcSelect(row.w.info, row.w.schedules);
        const double values[6] = {
            1.0,
            s.rel(s.sync.elapsed),
            s.rel(s.asyncBest.elapsed),
            s.rel(s.asyncWorst.elapsed),
            s.rel(s.oracle.runs[lc_pick].elapsed),
            s.rel(s.oracle.worst()),
        };
        table.row().cell(row.name);
        for (int c = 0; c < 6; ++c) {
            table.cell(values[c], 3);
            columns[c].push_back(values[c]);
        }
        std::cout << "  dysel-sync selected '"
                  << s.sync.firstIteration.selectedName << "', LC chose '"
                  << row.w.variants[lc_pick].name << "'\n";
    }
    geoMeanRow(table, columns);

    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nPaper: DySel <= 8% over oracle in the worst case; "
                 "LC mispredicts only spmv-csr(diagonal).\n";
    return 0;
}
