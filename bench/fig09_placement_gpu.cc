/**
 * @file
 * Reproduces Fig. 9: DySel vs. the model-driven data-placement
 * baselines (PORPLE and the rule-based heuristic of Jang et al.) on
 * the GPU, for spmv-csr and the particle filter.
 *
 * The candidate variants are the policies the baselines generate, so
 * each baseline's bar is simply its own policy's pure run.  Paper
 * shape: DySel near-oracle on both; on spmv-csr PORPLE's
 * Kepler-targeted policy is 1.29x off (the best policy is the one it
 * generates for Fermi) and the heuristic is 2.29x off; on particle
 * filter both baselines find the optimum and the original Rodinia
 * placement is the worst (1.17x).
 */
#include <iostream>

#include "support/table.hh"
#include "workloads/particlefilter.hh"
#include "workloads/spmv_csr.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

namespace {

void
runOne(support::Table &table, const char *name, Workload w,
       const char *porple_policy, const char *heuristic_policy)
{
    std::cout << "running " << name << "...\n";
    const DyselSeries s = runSeries(workloads::gpuFactory(), w);
    checkSeries(name, s);

    const int porple_idx = w.variantIndex(porple_policy);
    const int heuristic_idx = w.variantIndex(heuristic_policy);
    if (porple_idx < 0 || heuristic_idx < 0)
        support::fatal("unknown baseline policy for %s", name);

    table.row()
        .cell(name)
        .cell(1.0, 3)
        .cell(s.rel(s.sync.elapsed), 3)
        .cell(s.rel(s.asyncBest.elapsed), 3)
        .cell(s.rel(s.asyncWorst.elapsed), 3)
        .cell(s.rel(s.oracle.runs[porple_idx].elapsed), 3)
        .cell(s.rel(s.oracle.runs[heuristic_idx].elapsed), 3)
        .cell(s.rel(s.oracle.worst()), 3);

    std::cout << "  oracle policy: "
              << s.oracle.runs[s.oracle.bestIndex].name
              << "; dysel-sync selected '"
              << s.sync.firstIteration.selectedName << "'\n";
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 9: DySel vs data-placement models on GPU ===\n"
              << "relative execution time over oracle, lower is "
                 "better\n\n";

    support::Table table({"benchmark", "Oracle", "Sync", "Async(best)",
                          "Async(worst)", "PORPLE", "Heuristic",
                          "Worst"});

    // PORPLE's deployment targets the current (Kepler) device; the
    // rule-based heuristic has one fixed policy.
    runOne(table, "spmv-csr", workloads::makeSpmvCsrGpuPlacement(),
           "porple-kepler", "jang-heuristic");
    runOne(table, "particlefilter", workloads::makeParticleFilterGpu(),
           "porple-a", "jang-heuristic");

    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nPaper: DySel near-oracle; PORPLE 1.29x and heuristic "
                 "2.29x off on spmv-csr; Rodinia's original placement "
                 "worst (1.17x) on particlefilter.\n";
    return 0;
}
