/**
 * @file
 * Extension bench: performance portability across devices -- the
 * paper's opening motivation.  The same kernel pools, launched
 * unchanged on the CPU and the GPU, select different winners: the
 * naive base versions on the CPU (whose caches do the tiling) and the
 * coarsened / texture-placed versions on the GPU.  No per-device code
 * or model was written; the selection falls out of micro-profiling.
 */
#include <iostream>

#include "support/table.hh"
#include "workloads/cutcp.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

namespace {

struct PoolResult
{
    std::string winner;
    double overhead;
    bool ok;
};

PoolResult
runOn(Workload w, const DeviceFactory &factory)
{
    const auto oracle = workloads::runOracle(factory, w);
    const auto run =
        workloads::runDysel(factory, w, runtime::LaunchOptions{});
    return {run.firstIteration.selectedName,
            (workloads::relative(run.elapsed, oracle.best()) - 1.0)
                * 100.0,
            run.ok};
}

} // namespace

int
main()
{
    std::cout << "=== Extension: one kernel pool, two devices ===\n"
              << "DySel's selection per device (overhead vs that "
                 "device's oracle)\n\n";

    support::Table table({"kernel pool", "CPU winner", "CPU ovh (%)",
                          "GPU winner", "GPU ovh (%)", "portable?"});

    struct Pool
    {
        const char *name;
        Workload cpu;
        Workload gpu;
    };
    std::vector<Pool> pools;
    pools.push_back({"sgemm (base vs tiled)", workloads::makeSgemmMixed(),
                     workloads::makeSgemmMixed()});
    pools.push_back({"stencil (3 versions)",
                     workloads::makeStencilMixed(),
                     workloads::makeStencilMixed()});
    pools.push_back({"cutcp (base vs coarsened)",
                     workloads::makeCutcpMixed(),
                     workloads::makeCutcpMixed()});
    pools.push_back({"spmv-jds (4 versions)",
                     workloads::makeSpmvJdsCpuMixed(),
                     workloads::makeSpmvJdsGpuMixed()});

    for (auto &pool : pools) {
        std::cout << "running " << pool.name << "...\n";
        const PoolResult cpu = runOn(std::move(pool.cpu),
                                     workloads::cpuFactory());
        const PoolResult gpu = runOn(std::move(pool.gpu),
                                     workloads::gpuFactory());
        if (!cpu.ok || !gpu.ok)
            std::cerr << "WARNING: wrong result in " << pool.name
                      << "\n";
        table.row()
            .cell(pool.name)
            .cell(cpu.winner)
            .cell(cpu.overhead, 1)
            .cell(gpu.winner)
            .cell(gpu.overhead, 1)
            .cell(cpu.winner == gpu.winner ? "same code wins"
                                           : "winner differs");
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nThe same registered pool yields device-appropriate "
                 "selections with no per-device modeling -- the "
                 "performance-portability story of the paper's "
                 "introduction.\n";
    return 0;
}
