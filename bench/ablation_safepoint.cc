/**
 * @file
 * Ablation of two safe-point design choices (§3.4):
 *  1. the utilization constant -- scaling the profiling volume so the
 *     device saturates and per-SM caches warm up during measurement
 *     (gpuSaturationBoost) -- against minimal one-group-per-SM
 *     profiling;
 *  2. productive vs discarding profiling -- what the paper's central
 *     "profiling output contributes" idea saves compared to an
 *     offline-style profiler that reprocesses the profiled slice.
 */
#include <iostream>

#include "support/table.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

int
main()
{
    std::cout << "=== Ablation: safe-point utilization scaling "
                 "(GPU spmv-jds) ===\n\n";

    const auto oracle = [] {
        Workload w = workloads::makeSpmvJdsGpuMixed();
        return workloads::runOracle(workloads::gpuFactory(), w);
    }();
    const std::string best_name = oracle.runs[oracle.bestIndex].name;
    std::cout << "oracle variant: " << best_name << "\n\n";

    support::Table table({"saturation boost", "selected",
                          "relative time", "profiled units"});
    for (unsigned boost : {1u, 2u, 4u, 8u}) {
        Workload w = workloads::makeSpmvJdsGpuMixed();
        runtime::RuntimeConfig config;
        config.gpuSaturationBoost = boost;
        const auto run = workloads::runDyselConfigured(
            workloads::gpuFactory(), w, runtime::LaunchOptions{},
            config);
        table.row()
            .cell(std::uint64_t{boost})
            .cell(run.firstIteration.selectedName)
            .cell(workloads::relative(run.elapsed, oracle.best()), 3)
            .cell(run.firstIteration.profiledUnits);
    }
    table.print(std::cout);
    std::cout << "\nSmall profiles measure cold caches and can "
                 "mis-rank texture-dependent variants; larger profiles "
                 "cost more but measure steady state.\n";

    // ---- productive vs discard profiling ----------------------------
    std::cout << "\n=== Ablation: productive vs discarding profiling "
                 "(CPU stencil) ===\n\n";
    Workload w = workloads::makeStencilMixed();
    const auto st_oracle =
        workloads::runOracle(workloads::cpuFactory(), w);
    runtime::LaunchOptions opt;
    opt.orch = runtime::Orchestration::Sync;
    const auto run = workloads::runDysel(workloads::cpuFactory(), w, opt);

    // A discarding profiler reprocesses every productive unit with
    // the winner; charge that work at the winner's steady rate.
    const double best_rate =
        static_cast<double>(st_oracle.best())
        / (static_cast<double>(w.units) * w.iterations);
    const double discard_extra =
        best_rate
        * static_cast<double>(run.firstIteration.productiveUnits);
    const double productive_rel =
        workloads::relative(run.elapsed, st_oracle.best());
    const double discard_rel =
        (static_cast<double>(run.elapsed) + discard_extra)
        / static_cast<double>(st_oracle.best());

    support::Table ptable({"profiling style", "relative time"});
    ptable.row().cell("productive (DySel)").cell(productive_rel, 3);
    ptable.row().cell("discarding (offline-style)").cell(discard_rel, 3);
    ptable.print(std::cout);
    std::cout << "\nProductive profiling's contribution is exactly the "
                 "reprocessing cost a discarding profiler pays back.\n";
    return 0;
}
