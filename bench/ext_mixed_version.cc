/**
 * @file
 * Extension bench: mixed-version execution (the paper's §4.1 future
 * work).  On a heterogeneous matrix -- half random rows, half
 * diagonal -- no pure spmv kernel is good everywhere, so per-segment
 * selection beats even the oracle pure variant.
 */
#include <iostream>

#include "dysel/mixed.hh"
#include "support/table.hh"
#include "workloads/spmv_csr.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;

int
main()
{
    std::cout << "=== Extension: mixed-version execution on a "
                 "heterogeneous matrix (GPU) ===\n"
              << "top half of the rows: random (~40 nnz); bottom half: "
                 "diagonal (1 nnz)\n\n";

    Workload w = workloads::makeSpmvCsrGpuHetero();
    const auto oracle = workloads::runOracle(workloads::gpuFactory(), w);

    // Standard DySel: one selection for the whole workload.
    Workload w_std = workloads::makeSpmvCsrGpuHetero();
    const auto standard = workloads::runDysel(
        workloads::gpuFactory(), w_std, runtime::LaunchOptions{});

    // Mixed-version: per-segment selection, re-profiled per launch.
    Workload w_mix = workloads::makeSpmvCsrGpuHetero();
    auto device = workloads::gpuFactory()();
    runtime::Runtime rt(*device);
    w_mix.registerWith(rt);
    w_mix.resetOutput();
    const sim::TimeNs mix_start = device->now();
    const runtime::MixedReport mixed = runtime::launchKernelMixed(
        rt, w_mix.signature, w_mix.units, w_mix.args, 8);
    for (unsigned it = 1; it < w_mix.iterations; ++it)
        runtime::launchKernelMixedCached(rt, w_mix.signature,
                                         w_mix.units, w_mix.args, mixed);
    const sim::TimeNs mixed_elapsed = device->now() - mix_start;

    support::Table table({"configuration", "time (ms)",
                          "relative to pure oracle"});
    for (const auto &run : oracle.runs)
        table.row()
            .cell("pure " + run.name)
            .cell(static_cast<double>(run.elapsed) / 1e6, 3)
            .cell(workloads::relative(run.elapsed, oracle.best()), 3);
    table.row()
        .cell("DySel (single selection)")
        .cell(static_cast<double>(standard.elapsed) / 1e6, 3)
        .cell(workloads::relative(standard.elapsed, oracle.best()), 3);
    table.row()
        .cell("DySel mixed (8 segments)")
        .cell(static_cast<double>(mixed_elapsed) / 1e6, 3)
        .cell(workloads::relative(mixed_elapsed, oracle.best()), 3);
    table.print(std::cout);

    std::cout << "\nper-segment selection:";
    for (int sel : mixed.segmentSelection)
        std::cout << " " << w_mix.variants[sel].name;
    std::cout << "\nresult "
              << (w_mix.check() ? "correct" : "WRONG") << "; "
              << (mixed.heterogeneous() ? "heterogeneous"
                                        : "uniform")
              << " selection\n"
              << "\nPaper §4.1: \"a mixed version that applies "
                 "different pure versions on different partitions of "
                 "computation could potentially outperform the "
                 "oracle\" -- demonstrated here.\n";
    return 0;
}
