/**
 * @file
 * Reproduces Fig. 11: input-dependent selection for spmv-csr.  The
 * best kernel depends on the sparsity structure, which is unknown at
 * compile time: on the random matrix the vector kernel wins (the
 * scalar one's accesses don't coalesce); on the diagonal matrix the
 * scalar kernel wins (the vector kernel wastes 31 of 32 lanes).
 *
 * Panel (a): CPU, scalar/vector x DFO/BFO work-item schedules.
 * Panel (b): GPU, scalar vs vector.
 */
#include <iostream>

#include "support/table.hh"
#include "workloads/spmv_csr.hh"

#include "figure_common.hh"

using namespace dysel;
using namespace dysel::bench;
using workloads::SpmvInput;

namespace {

void
runPanel(bool gpu)
{
    std::cout << "--- Fig. 11" << (gpu ? "b (GPU)" : "a (CPU)")
              << " ---\n";
    const DeviceFactory factory =
        gpu ? workloads::gpuFactory() : workloads::cpuFactory();

    // Build the header from the variant list of one instance.
    Workload probe = gpu
        ? workloads::makeSpmvCsrGpuInputDep(SpmvInput::Random)
        : workloads::makeSpmvCsrCpuInputDep(SpmvInput::Random);
    std::vector<std::string> headers = {"input", "Oracle", "Sync",
                                        "Async(best)", "Async(worst)"};
    for (const auto &v : probe.variants)
        headers.push_back(v.name);
    headers.push_back("Worst");
    support::Table table(headers);

    for (SpmvInput input : {SpmvInput::Random, SpmvInput::Diagonal}) {
        Workload w = gpu ? workloads::makeSpmvCsrGpuInputDep(input)
                         : workloads::makeSpmvCsrCpuInputDep(input);
        const char *name = workloads::spmvInputName(input);
        std::cout << "running " << name << " matrix...\n";
        const DyselSeries s = runSeries(factory, w);
        checkSeries(name, s);

        table.row()
            .cell(std::string(name) + " matrix")
            .cell(1.0, 3)
            .cell(s.rel(s.sync.elapsed), 3)
            .cell(s.rel(s.asyncBest.elapsed), 3)
            .cell(s.rel(s.asyncWorst.elapsed), 3);
        for (const auto &run : s.oracle.runs)
            table.cell(s.rel(run.elapsed), 3);
        table.cell(s.rel(s.oracle.worst()), 3);

        std::cout << "  dysel-sync selected '"
                  << s.sync.firstIteration.selectedName << "'\n";
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 11: input-dependent optimization "
                 "(spmv-csr) ===\n"
              << "relative execution time over oracle, lower is "
                 "better\n\n";
    runPanel(false);
    runPanel(true);
    std::cout << "Paper: DySel adapts to both inputs; on GPU the losing "
                 "kernel costs 4.73x (random) / 22.73x (diagonal); LC's "
                 "static DFO pick can't cope with the diagonal matrix "
                 "on CPU.\n";
    return 0;
}
