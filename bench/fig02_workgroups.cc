/**
 * @file
 * Reproduces Fig. 2: the distribution of work-group counts across
 * kernel launches of the benchmark suites.  The paper tallies every
 * OpenCL launch of Parboil and Rodinia; we tally every launch the
 * reproduced workloads would issue (every variant's grid, once per
 * iteration), which exercises the same claim: the bulk of launches
 * carry hundreds to tens of thousands of work-groups, so sacrificing
 * a few of them to micro-profiling is cheap.
 */
#include <cmath>
#include <iostream>
#include <map>

#include "support/table.hh"
#include "workloads/cutcp.hh"
#include "workloads/histogram.hh"
#include "workloads/kmeans.hh"
#include "workloads/particlefilter.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

using namespace dysel;
using namespace dysel::workloads;

int
main()
{
    std::cout << "=== Fig. 2: work-groups per kernel launch across the "
                 "workload suite ===\n\n";

    std::vector<Workload> suite;
    suite.push_back(makeSgemmLcCpu());
    suite.push_back(makeSgemmVectorCpu());
    suite.push_back(makeSgemmMixed());
    suite.push_back(makeSpmvCsrCpuLc(SpmvInput::Random));
    suite.push_back(makeSpmvCsrCpuLc(SpmvInput::Diagonal));
    suite.push_back(makeSpmvCsrCpuInputDep(SpmvInput::Random));
    suite.push_back(makeSpmvCsrGpuInputDep(SpmvInput::Diagonal));
    suite.push_back(makeSpmvCsrGpuPlacement());
    suite.push_back(makeSpmvJdsCpuLc());
    suite.push_back(makeSpmvJdsGpuMixed());
    suite.push_back(makeStencilLcCpu());
    suite.push_back(makeStencilMixed());
    suite.push_back(makeKmeansLcCpu());
    suite.push_back(makeCutcpLcCpu());
    suite.push_back(makeCutcpMixed());
    suite.push_back(makeParticleFilterGpu());
    suite.push_back(makeHistogram());

    // Bucket by power-of-two work-group count, one launch per variant
    // per iteration (the launches an autotuned deployment would see).
    std::map<unsigned, std::uint64_t> histogram;
    std::uint64_t small_launches = 0;
    for (const auto &w : suite) {
        for (const auto &v : w.variants) {
            const std::uint64_t groups = v.groupsFor(w.units);
            if (groups < 128) {
                small_launches += w.iterations;
                continue;
            }
            const auto bucket = static_cast<unsigned>(
                std::pow(2.0, std::floor(std::log2(
                                  static_cast<double>(groups)))));
            histogram[bucket] += w.iterations;
        }
    }

    support::Table table({"work-groups (bucket)", "kernel launches"});
    for (const auto &[bucket, count] : histogram)
        table.row().cell(std::uint64_t{bucket}).cell(count);
    table.print(std::cout);

    std::cout << "\nlaunches with fewer than 128 work-groups (dropped, "
                 "as in the paper): "
              << small_launches << "\n"
              << "Paper: launches overwhelmingly fall in the 128..32768 "
                 "work-group range.\n";
    return 0;
}
