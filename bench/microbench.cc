/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * cache model throughput, trace-replay cost models, and the event
 * engine.  These bound the wall-clock cost of the reproduction (the
 * simulated kernels execute millions of traced accesses per figure).
 */
#include <benchmark/benchmark.h>

#include "kdp/context.hh"
#include "sim/cache/cache.hh"
#include "sim/cpu/cpu_cost_model.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/event_engine.hh"
#include "sim/gpu/gpu_cost_model.hh"
#include "sim/gpu/gpu_device.hh"
#include "support/rng.hh"

using namespace dysel;
using namespace dysel::sim;

static void
BM_CacheSequentialAccess(benchmark::State &state)
{
    Cache cache({32 * 1024, 8, 64});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSequentialAccess);

static void
BM_CacheRandomAccess(benchmark::State &state)
{
    Cache cache({32 * 1024, 8, 64});
    support::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.next() & 0xfffff));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheRandomAccess);

static void
BM_EventEngineScheduleFire(benchmark::State &state)
{
    for (auto _ : state) {
        EventEngine engine;
        for (int i = 0; i < 1024; ++i)
            engine.schedule(static_cast<TimeNs>(i), [] {});
        engine.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventEngineScheduleFire);

namespace {

kdp::WorkGroupTrace
makeTrace(unsigned lanes, unsigned ops_per_lane)
{
    static kdp::Buffer<float> buf(1 << 20, kdp::MemSpace::Global, "b");
    kdp::WorkGroupTrace t;
    t.reset(lanes);
    kdp::GroupCtx g(0, lanes, 1, &t);
    for (unsigned i = 0; i < ops_per_lane; ++i)
        for (unsigned lane = 0; lane < lanes; ++lane)
            g.load(buf, (std::uint64_t{i} * lanes + lane) % (1 << 20),
                   lane);
    return t;
}

} // namespace

static void
BM_CpuCostModelScalarReplay(benchmark::State &state)
{
    const auto trace = makeTrace(64, 256);
    CpuConfig cfg;
    CpuCoreState core(cfg.l1, cfg.l2);
    Cache l3(cfg.l3);
    kdp::VariantTraits traits;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cpuWorkGroupCycles(trace, traits, core, l3, cfg.cost));
    state.SetItemsProcessed(state.iterations() * trace.accesses.size());
}
BENCHMARK(BM_CpuCostModelScalarReplay);

static void
BM_CpuCostModelVectorReplay(benchmark::State &state)
{
    const auto trace = makeTrace(64, 256);
    CpuConfig cfg;
    CpuCoreState core(cfg.l1, cfg.l2);
    Cache l3(cfg.l3);
    kdp::VariantTraits traits;
    traits.vectorWidth = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cpuWorkGroupCycles(trace, traits, core, l3, cfg.cost));
    state.SetItemsProcessed(state.iterations() * trace.accesses.size());
}
BENCHMARK(BM_CpuCostModelVectorReplay);

static void
BM_GpuCostModelWarpReplay(benchmark::State &state)
{
    const auto trace = makeTrace(64, 256);
    GpuConfig cfg;
    GpuSmState sm(cfg.tex);
    Cache l2(cfg.l2);
    kdp::VariantTraits traits;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            gpuWorkGroupCost(trace, traits, 64, sm, l2, cfg.cost));
    state.SetItemsProcessed(state.iterations() * trace.accesses.size());
}
BENCHMARK(BM_GpuCostModelWarpReplay);

static void
BM_TraceRecording(benchmark::State &state)
{
    kdp::Buffer<float> buf(1 << 16, kdp::MemSpace::Global, "b");
    kdp::WorkGroupTrace t;
    for (auto _ : state) {
        t.reset(64);
        kdp::GroupCtx g(0, 64, 1, &t);
        for (unsigned i = 0; i < 64; ++i)
            for (unsigned lane = 0; lane < 64; ++lane)
                g.load(buf, (std::uint64_t{i} * 64 + lane) % (1 << 16),
                       lane);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_TraceRecording);

BENCHMARK_MAIN();
