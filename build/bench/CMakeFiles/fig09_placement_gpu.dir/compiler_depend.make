# Empty compiler generated dependencies file for fig09_placement_gpu.
# This may be replaced when dependencies are built.
