file(REMOVE_RECURSE
  "CMakeFiles/fig09_placement_gpu.dir/fig09_placement_gpu.cc.o"
  "CMakeFiles/fig09_placement_gpu.dir/fig09_placement_gpu.cc.o.d"
  "fig09_placement_gpu"
  "fig09_placement_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_placement_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
