file(REMOVE_RECURSE
  "CMakeFiles/fig11_input_dependent.dir/fig11_input_dependent.cc.o"
  "CMakeFiles/fig11_input_dependent.dir/fig11_input_dependent.cc.o.d"
  "fig11_input_dependent"
  "fig11_input_dependent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_input_dependent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
