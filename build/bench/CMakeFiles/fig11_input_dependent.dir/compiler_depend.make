# Empty compiler generated dependencies file for fig11_input_dependent.
# This may be replaced when dependencies are built.
