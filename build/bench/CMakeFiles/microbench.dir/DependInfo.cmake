
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/microbench.cc" "bench/CMakeFiles/microbench.dir/microbench.cc.o" "gcc" "bench/CMakeFiles/microbench.dir/microbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dysel_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dysel/CMakeFiles/dysel_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dysel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dysel_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/kdp/CMakeFiles/dysel_kdp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dysel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
