# Empty compiler generated dependencies file for fig01_vectorization.
# This may be replaced when dependencies are built.
