file(REMOVE_RECURSE
  "CMakeFiles/fig01_vectorization.dir/fig01_vectorization.cc.o"
  "CMakeFiles/fig01_vectorization.dir/fig01_vectorization.cc.o.d"
  "fig01_vectorization"
  "fig01_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
