# Empty compiler generated dependencies file for sec51_sync_async.
# This may be replaced when dependencies are built.
