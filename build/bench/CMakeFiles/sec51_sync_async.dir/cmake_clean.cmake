file(REMOVE_RECURSE
  "CMakeFiles/sec51_sync_async.dir/sec51_sync_async.cc.o"
  "CMakeFiles/sec51_sync_async.dir/sec51_sync_async.cc.o.d"
  "sec51_sync_async"
  "sec51_sync_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_sync_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
