# Empty dependencies file for ext_device_portability.
# This may be replaced when dependencies are built.
