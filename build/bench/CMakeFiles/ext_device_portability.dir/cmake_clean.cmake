file(REMOVE_RECURSE
  "CMakeFiles/ext_device_portability.dir/ext_device_portability.cc.o"
  "CMakeFiles/ext_device_portability.dir/ext_device_portability.cc.o.d"
  "ext_device_portability"
  "ext_device_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_device_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
