# Empty dependencies file for ext_mixed_version.
# This may be replaced when dependencies are built.
