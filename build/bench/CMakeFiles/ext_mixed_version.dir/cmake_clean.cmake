file(REMOVE_RECURSE
  "CMakeFiles/ext_mixed_version.dir/ext_mixed_version.cc.o"
  "CMakeFiles/ext_mixed_version.dir/ext_mixed_version.cc.o.d"
  "ext_mixed_version"
  "ext_mixed_version.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mixed_version.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
