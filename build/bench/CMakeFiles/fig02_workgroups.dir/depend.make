# Empty dependencies file for fig02_workgroups.
# This may be replaced when dependencies are built.
