file(REMOVE_RECURSE
  "CMakeFiles/fig02_workgroups.dir/fig02_workgroups.cc.o"
  "CMakeFiles/fig02_workgroups.dir/fig02_workgroups.cc.o.d"
  "fig02_workgroups"
  "fig02_workgroups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_workgroups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
