file(REMOVE_RECURSE
  "CMakeFiles/fig08_lc_cpu.dir/fig08_lc_cpu.cc.o"
  "CMakeFiles/fig08_lc_cpu.dir/fig08_lc_cpu.cc.o.d"
  "fig08_lc_cpu"
  "fig08_lc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_lc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
