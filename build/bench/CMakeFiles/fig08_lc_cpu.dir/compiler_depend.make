# Empty compiler generated dependencies file for fig08_lc_cpu.
# This may be replaced when dependencies are built.
