# Empty dependencies file for ablation_safepoint.
# This may be replaced when dependencies are built.
