file(REMOVE_RECURSE
  "CMakeFiles/input_adaptive.dir/input_adaptive.cpp.o"
  "CMakeFiles/input_adaptive.dir/input_adaptive.cpp.o.d"
  "input_adaptive"
  "input_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
