# Empty dependencies file for input_adaptive.
# This may be replaced when dependencies are built.
