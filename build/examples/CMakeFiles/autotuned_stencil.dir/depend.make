# Empty dependencies file for autotuned_stencil.
# This may be replaced when dependencies are built.
