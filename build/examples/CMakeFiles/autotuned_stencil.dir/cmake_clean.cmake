file(REMOVE_RECURSE
  "CMakeFiles/autotuned_stencil.dir/autotuned_stencil.cpp.o"
  "CMakeFiles/autotuned_stencil.dir/autotuned_stencil.cpp.o.d"
  "autotuned_stencil"
  "autotuned_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotuned_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
