file(REMOVE_RECURSE
  "libdysel_workloads.a"
)
