# Empty compiler generated dependencies file for dysel_workloads.
# This may be replaced when dependencies are built.
