file(REMOVE_RECURSE
  "CMakeFiles/dysel_workloads.dir/cutcp.cc.o"
  "CMakeFiles/dysel_workloads.dir/cutcp.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/evaluate.cc.o"
  "CMakeFiles/dysel_workloads.dir/evaluate.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/histogram.cc.o"
  "CMakeFiles/dysel_workloads.dir/histogram.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/kmeans.cc.o"
  "CMakeFiles/dysel_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/particlefilter.cc.o"
  "CMakeFiles/dysel_workloads.dir/particlefilter.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/sgemm.cc.o"
  "CMakeFiles/dysel_workloads.dir/sgemm.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/sparse.cc.o"
  "CMakeFiles/dysel_workloads.dir/sparse.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/spmv_csr.cc.o"
  "CMakeFiles/dysel_workloads.dir/spmv_csr.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/spmv_jds.cc.o"
  "CMakeFiles/dysel_workloads.dir/spmv_jds.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/stencil.cc.o"
  "CMakeFiles/dysel_workloads.dir/stencil.cc.o.d"
  "CMakeFiles/dysel_workloads.dir/workload.cc.o"
  "CMakeFiles/dysel_workloads.dir/workload.cc.o.d"
  "libdysel_workloads.a"
  "libdysel_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dysel_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
