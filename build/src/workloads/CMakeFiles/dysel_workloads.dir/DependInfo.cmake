
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cutcp.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/cutcp.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/cutcp.cc.o.d"
  "/root/repo/src/workloads/evaluate.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/evaluate.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/evaluate.cc.o.d"
  "/root/repo/src/workloads/histogram.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/histogram.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/histogram.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/particlefilter.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/particlefilter.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/particlefilter.cc.o.d"
  "/root/repo/src/workloads/sgemm.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/sgemm.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/sgemm.cc.o.d"
  "/root/repo/src/workloads/sparse.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/sparse.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/sparse.cc.o.d"
  "/root/repo/src/workloads/spmv_csr.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/spmv_csr.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/spmv_csr.cc.o.d"
  "/root/repo/src/workloads/spmv_jds.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/spmv_jds.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/spmv_jds.cc.o.d"
  "/root/repo/src/workloads/stencil.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/stencil.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/stencil.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/dysel_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/dysel_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dysel/CMakeFiles/dysel_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dysel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kdp/CMakeFiles/dysel_kdp.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dysel_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dysel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
