# Empty dependencies file for dysel_runtime.
# This may be replaced when dependencies are built.
