file(REMOVE_RECURSE
  "libdysel_runtime.a"
)
