
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dysel/gpu_timer.cc" "src/dysel/CMakeFiles/dysel_runtime.dir/gpu_timer.cc.o" "gcc" "src/dysel/CMakeFiles/dysel_runtime.dir/gpu_timer.cc.o.d"
  "/root/repo/src/dysel/mixed.cc" "src/dysel/CMakeFiles/dysel_runtime.dir/mixed.cc.o" "gcc" "src/dysel/CMakeFiles/dysel_runtime.dir/mixed.cc.o.d"
  "/root/repo/src/dysel/runtime.cc" "src/dysel/CMakeFiles/dysel_runtime.dir/runtime.cc.o" "gcc" "src/dysel/CMakeFiles/dysel_runtime.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dysel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kdp/CMakeFiles/dysel_kdp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dysel_support.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dysel_compiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
