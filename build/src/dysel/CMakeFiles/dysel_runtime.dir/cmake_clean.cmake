file(REMOVE_RECURSE
  "CMakeFiles/dysel_runtime.dir/gpu_timer.cc.o"
  "CMakeFiles/dysel_runtime.dir/gpu_timer.cc.o.d"
  "CMakeFiles/dysel_runtime.dir/mixed.cc.o"
  "CMakeFiles/dysel_runtime.dir/mixed.cc.o.d"
  "CMakeFiles/dysel_runtime.dir/runtime.cc.o"
  "CMakeFiles/dysel_runtime.dir/runtime.cc.o.d"
  "libdysel_runtime.a"
  "libdysel_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dysel_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
