file(REMOVE_RECURSE
  "CMakeFiles/dysel_kdp.dir/buffer.cc.o"
  "CMakeFiles/dysel_kdp.dir/buffer.cc.o.d"
  "CMakeFiles/dysel_kdp.dir/mem_space.cc.o"
  "CMakeFiles/dysel_kdp.dir/mem_space.cc.o.d"
  "CMakeFiles/dysel_kdp.dir/trace.cc.o"
  "CMakeFiles/dysel_kdp.dir/trace.cc.o.d"
  "libdysel_kdp.a"
  "libdysel_kdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dysel_kdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
