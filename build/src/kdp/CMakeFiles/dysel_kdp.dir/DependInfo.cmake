
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kdp/buffer.cc" "src/kdp/CMakeFiles/dysel_kdp.dir/buffer.cc.o" "gcc" "src/kdp/CMakeFiles/dysel_kdp.dir/buffer.cc.o.d"
  "/root/repo/src/kdp/mem_space.cc" "src/kdp/CMakeFiles/dysel_kdp.dir/mem_space.cc.o" "gcc" "src/kdp/CMakeFiles/dysel_kdp.dir/mem_space.cc.o.d"
  "/root/repo/src/kdp/trace.cc" "src/kdp/CMakeFiles/dysel_kdp.dir/trace.cc.o" "gcc" "src/kdp/CMakeFiles/dysel_kdp.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dysel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
