# Empty dependencies file for dysel_kdp.
# This may be replaced when dependencies are built.
