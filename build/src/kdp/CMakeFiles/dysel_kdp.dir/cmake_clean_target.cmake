file(REMOVE_RECURSE
  "libdysel_kdp.a"
)
