file(REMOVE_RECURSE
  "libdysel_sim.a"
)
