
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache/cache.cc" "src/sim/CMakeFiles/dysel_sim.dir/cache/cache.cc.o" "gcc" "src/sim/CMakeFiles/dysel_sim.dir/cache/cache.cc.o.d"
  "/root/repo/src/sim/cpu/cpu_cost_model.cc" "src/sim/CMakeFiles/dysel_sim.dir/cpu/cpu_cost_model.cc.o" "gcc" "src/sim/CMakeFiles/dysel_sim.dir/cpu/cpu_cost_model.cc.o.d"
  "/root/repo/src/sim/cpu/cpu_device.cc" "src/sim/CMakeFiles/dysel_sim.dir/cpu/cpu_device.cc.o" "gcc" "src/sim/CMakeFiles/dysel_sim.dir/cpu/cpu_device.cc.o.d"
  "/root/repo/src/sim/event_engine.cc" "src/sim/CMakeFiles/dysel_sim.dir/event_engine.cc.o" "gcc" "src/sim/CMakeFiles/dysel_sim.dir/event_engine.cc.o.d"
  "/root/repo/src/sim/gpu/gpu_cost_model.cc" "src/sim/CMakeFiles/dysel_sim.dir/gpu/gpu_cost_model.cc.o" "gcc" "src/sim/CMakeFiles/dysel_sim.dir/gpu/gpu_cost_model.cc.o.d"
  "/root/repo/src/sim/gpu/gpu_device.cc" "src/sim/CMakeFiles/dysel_sim.dir/gpu/gpu_device.cc.o" "gcc" "src/sim/CMakeFiles/dysel_sim.dir/gpu/gpu_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kdp/CMakeFiles/dysel_kdp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dysel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
