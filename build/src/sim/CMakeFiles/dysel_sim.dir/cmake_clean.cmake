file(REMOVE_RECURSE
  "CMakeFiles/dysel_sim.dir/cache/cache.cc.o"
  "CMakeFiles/dysel_sim.dir/cache/cache.cc.o.d"
  "CMakeFiles/dysel_sim.dir/cpu/cpu_cost_model.cc.o"
  "CMakeFiles/dysel_sim.dir/cpu/cpu_cost_model.cc.o.d"
  "CMakeFiles/dysel_sim.dir/cpu/cpu_device.cc.o"
  "CMakeFiles/dysel_sim.dir/cpu/cpu_device.cc.o.d"
  "CMakeFiles/dysel_sim.dir/event_engine.cc.o"
  "CMakeFiles/dysel_sim.dir/event_engine.cc.o.d"
  "CMakeFiles/dysel_sim.dir/gpu/gpu_cost_model.cc.o"
  "CMakeFiles/dysel_sim.dir/gpu/gpu_cost_model.cc.o.d"
  "CMakeFiles/dysel_sim.dir/gpu/gpu_device.cc.o"
  "CMakeFiles/dysel_sim.dir/gpu/gpu_device.cc.o.d"
  "libdysel_sim.a"
  "libdysel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dysel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
