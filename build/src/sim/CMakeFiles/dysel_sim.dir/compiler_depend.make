# Empty compiler generated dependencies file for dysel_sim.
# This may be replaced when dependencies are built.
