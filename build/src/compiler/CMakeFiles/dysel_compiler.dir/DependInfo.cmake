
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/dysel_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/dysel_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/codegen.cc" "src/compiler/CMakeFiles/dysel_compiler.dir/codegen.cc.o" "gcc" "src/compiler/CMakeFiles/dysel_compiler.dir/codegen.cc.o.d"
  "/root/repo/src/compiler/schedule.cc" "src/compiler/CMakeFiles/dysel_compiler.dir/schedule.cc.o" "gcc" "src/compiler/CMakeFiles/dysel_compiler.dir/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kdp/CMakeFiles/dysel_kdp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dysel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
