file(REMOVE_RECURSE
  "libdysel_compiler.a"
)
