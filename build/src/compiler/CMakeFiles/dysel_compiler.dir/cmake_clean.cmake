file(REMOVE_RECURSE
  "CMakeFiles/dysel_compiler.dir/analysis.cc.o"
  "CMakeFiles/dysel_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/dysel_compiler.dir/codegen.cc.o"
  "CMakeFiles/dysel_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/dysel_compiler.dir/schedule.cc.o"
  "CMakeFiles/dysel_compiler.dir/schedule.cc.o.d"
  "libdysel_compiler.a"
  "libdysel_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dysel_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
