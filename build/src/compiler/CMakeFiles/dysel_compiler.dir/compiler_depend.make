# Empty compiler generated dependencies file for dysel_compiler.
# This may be replaced when dependencies are built.
