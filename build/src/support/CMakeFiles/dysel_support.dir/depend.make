# Empty dependencies file for dysel_support.
# This may be replaced when dependencies are built.
