file(REMOVE_RECURSE
  "libdysel_support.a"
)
