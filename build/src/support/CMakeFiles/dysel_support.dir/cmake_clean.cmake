file(REMOVE_RECURSE
  "CMakeFiles/dysel_support.dir/logging.cc.o"
  "CMakeFiles/dysel_support.dir/logging.cc.o.d"
  "CMakeFiles/dysel_support.dir/rng.cc.o"
  "CMakeFiles/dysel_support.dir/rng.cc.o.d"
  "CMakeFiles/dysel_support.dir/stats.cc.o"
  "CMakeFiles/dysel_support.dir/stats.cc.o.d"
  "CMakeFiles/dysel_support.dir/table.cc.o"
  "CMakeFiles/dysel_support.dir/table.cc.o.d"
  "libdysel_support.a"
  "libdysel_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dysel_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
