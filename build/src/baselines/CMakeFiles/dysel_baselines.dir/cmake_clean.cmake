file(REMOVE_RECURSE
  "CMakeFiles/dysel_baselines.dir/intel_vectorizer.cc.o"
  "CMakeFiles/dysel_baselines.dir/intel_vectorizer.cc.o.d"
  "CMakeFiles/dysel_baselines.dir/lc_scheduler.cc.o"
  "CMakeFiles/dysel_baselines.dir/lc_scheduler.cc.o.d"
  "libdysel_baselines.a"
  "libdysel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dysel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
