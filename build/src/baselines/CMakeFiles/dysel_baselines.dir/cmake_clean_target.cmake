file(REMOVE_RECURSE
  "libdysel_baselines.a"
)
