# Empty compiler generated dependencies file for dysel_baselines.
# This may be replaced when dependencies are built.
