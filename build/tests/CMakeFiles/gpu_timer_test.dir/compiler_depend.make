# Empty compiler generated dependencies file for gpu_timer_test.
# This may be replaced when dependencies are built.
