file(REMOVE_RECURSE
  "CMakeFiles/gpu_timer_test.dir/gpu_timer_test.cc.o"
  "CMakeFiles/gpu_timer_test.dir/gpu_timer_test.cc.o.d"
  "gpu_timer_test"
  "gpu_timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
