# Empty compiler generated dependencies file for kdp_test.
# This may be replaced when dependencies are built.
