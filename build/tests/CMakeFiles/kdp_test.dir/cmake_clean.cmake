file(REMOVE_RECURSE
  "CMakeFiles/kdp_test.dir/kdp_test.cc.o"
  "CMakeFiles/kdp_test.dir/kdp_test.cc.o.d"
  "kdp_test"
  "kdp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
