file(REMOVE_RECURSE
  "CMakeFiles/event_engine_test.dir/event_engine_test.cc.o"
  "CMakeFiles/event_engine_test.dir/event_engine_test.cc.o.d"
  "event_engine_test"
  "event_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
