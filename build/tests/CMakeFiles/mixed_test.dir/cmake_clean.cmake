file(REMOVE_RECURSE
  "CMakeFiles/mixed_test.dir/mixed_test.cc.o"
  "CMakeFiles/mixed_test.dir/mixed_test.cc.o.d"
  "mixed_test"
  "mixed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
