file(REMOVE_RECURSE
  "CMakeFiles/interplay_test.dir/interplay_test.cc.o"
  "CMakeFiles/interplay_test.dir/interplay_test.cc.o.d"
  "interplay_test"
  "interplay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interplay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
