# Empty dependencies file for runtime_property_test.
# This may be replaced when dependencies are built.
