file(REMOVE_RECURSE
  "CMakeFiles/runtime_property_test.dir/runtime_property_test.cc.o"
  "CMakeFiles/runtime_property_test.dir/runtime_property_test.cc.o.d"
  "runtime_property_test"
  "runtime_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
