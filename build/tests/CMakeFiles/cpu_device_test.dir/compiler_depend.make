# Empty compiler generated dependencies file for cpu_device_test.
# This may be replaced when dependencies are built.
