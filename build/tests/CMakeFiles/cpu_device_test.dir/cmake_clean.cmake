file(REMOVE_RECURSE
  "CMakeFiles/cpu_device_test.dir/cpu_device_test.cc.o"
  "CMakeFiles/cpu_device_test.dir/cpu_device_test.cc.o.d"
  "cpu_device_test"
  "cpu_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
