/**
 * @file
 * dyseld_top: a polling terminal dashboard over a dyseld --admin
 * plane (DESIGN §11).
 *
 * Fetches /healthz, /metrics, and /debug/audit from a running
 * service over loopback HTTP and renders one compact refresh per
 * interval: per-device queue depth / load / breaker state, the
 * headline counters (submitted, completed, failed, store hits,
 * batch fusion), and the selection-audit totals when the auditor is
 * on.  --once (or --iterations N) renders a bounded number of
 * frames and exits 0 only if every fetch succeeded -- which is what
 * the CI smoke runs against a held service.
 */
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include <chrono>

#include "support/json.hh"
#include "support/net/http.hh"
#include "support/table.hh"

using namespace dysel;

namespace {

struct Options
{
    std::string host = "127.0.0.1";
    int port = 8080;
    unsigned intervalMs = 1000;
    /** 0 = poll forever; N = render N frames and exit. */
    unsigned iterations = 0;
    bool clear = true; ///< ANSI clear between frames (off with --no-clear)
};

/**
 * Parse the Prometheus exposition into name -> value, keeping the
 * label-free series only (the dashboard wants headline counters, not
 * per-device fan-out).
 */
std::map<std::string, double>
parseProm(const std::string &text)
{
    std::map<std::string, double> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto sp = line.rfind(' ');
        if (sp == std::string::npos)
            continue;
        const std::string name = line.substr(0, sp);
        if (name.find('{') != std::string::npos)
            continue;
        out[name] = std::atof(line.c_str() + sp + 1);
    }
    return out;
}

double
counterOr(const std::map<std::string, double> &m,
          const std::string &name, double fallback = 0.0)
{
    const auto it = m.find(name);
    return it == m.end() ? fallback : it->second;
}

/** One dashboard frame; false when any fetch failed. */
bool
renderFrame(const Options &opt)
{
    std::string healthBody, metricsBody, auditBody;
    int status = 0;
    const auto portN = static_cast<std::uint16_t>(opt.port);
    if (const auto st = support::net::httpGet(opt.host, portN, "/healthz",
                                         healthBody, status);
        !st.ok() || status != 200) {
        std::cerr << "dyseld_top: /healthz: "
                  << (st.ok() ? "HTTP " + std::to_string(status)
                              : st.toString())
                  << '\n';
        return false;
    }
    if (const auto st = support::net::httpGet(opt.host, portN, "/metrics",
                                         metricsBody, status);
        !st.ok() || status != 200) {
        std::cerr << "dyseld_top: /metrics: "
                  << (st.ok() ? "HTTP " + std::to_string(status)
                              : st.toString())
                  << '\n';
        return false;
    }
    if (const auto st = support::net::httpGet(opt.host, portN,
                                         "/debug/audit", auditBody,
                                         status);
        !st.ok() || status != 200) {
        std::cerr << "dyseld_top: /debug/audit: "
                  << (st.ok() ? "HTTP " + std::to_string(status)
                              : st.toString())
                  << '\n';
        return false;
    }

    support::Json health;
    support::Json audit;
    try {
        health = support::Json::parse(healthBody);
        audit = support::Json::parse(auditBody);
    } catch (const std::exception &e) {
        std::cerr << "dyseld_top: bad JSON from admin plane: "
                  << e.what() << '\n';
        return false;
    }
    const auto prom = parseProm(metricsBody);

    if (opt.clear)
        std::cout << "\033[H\033[2J";
    std::cout << "dyseld @ " << opt.host << ':' << opt.port << "  ("
              << (health.boolOr("running", false) ? "running"
                                                  : "stopped")
              << ", in flight "
              << static_cast<std::uint64_t>(
                     health.numberOr("in_flight", 0))
              << ")\n\n";

    support::Table devices({"dev", "name", "queue", "load", "breaker",
                            "failures", "clock (ms)"});
    if (health.has("devices")) {
        for (const auto &d : health.at("devices").items()) {
            devices.row()
                .cell(static_cast<std::uint64_t>(
                    d.numberOr("index", 0)))
                .cell(d.stringOr("name", "?"))
                .cell(static_cast<std::uint64_t>(
                    d.numberOr("queue_depth", 0)))
                .cell(static_cast<std::uint64_t>(
                    d.numberOr("load", 0)))
                .cell(d.boolOr("breaker_open", false)
                          ? "OPEN("
                                + std::to_string(
                                    static_cast<std::uint64_t>(
                                        d.numberOr(
                                            "breaker_cooldown_left",
                                            0)))
                                + ")"
                          : "closed")
                .cell(static_cast<std::uint64_t>(
                    d.numberOr("consec_failures", 0)))
                .cell(d.numberOr("clock_ns", 0) / 1e6, 1);
        }
    }
    devices.print(std::cout);

    support::Table counters({"counter", "value"});
    auto row = [&](const char *label, const char *name) {
        counters.row().cell(label).cell(
            static_cast<std::uint64_t>(counterOr(prom, name)));
    };
    row("jobs submitted", "jobs_submitted");
    row("jobs completed", "jobs_completed");
    row("jobs failed", "jobs_failed");
    row("store hits", "store_hit");
    row("store misses", "store_miss");
    row("batch launches", "batch_launches");
    row("batched jobs", "batch_jobs");
    row("breaker trips", "breaker_trips");
    row("retries", "recover_retries");
    std::cout << '\n';
    counters.print(std::cout);

    std::cout << '\n';
    if (audit.boolOr("enabled", true) && audit.has("samples")) {
        std::cout << "audit: "
                  << static_cast<std::uint64_t>(
                         audit.numberOr("samples", 0))
                  << " samples, "
                  << static_cast<std::uint64_t>(
                         audit.numberOr("demotions", 0))
                  << " demotions, mean regret "
                  << audit.numberOr("mean_regret", 0.0) << '\n';
    } else {
        std::cout << "audit: off\n";
    }
    std::cout << std::flush;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host" && i + 1 < argc) {
            opt.host = argv[++i];
        } else if (arg == "--port" && i + 1 < argc) {
            opt.port = std::atoi(argv[++i]);
        } else if (arg == "--interval" && i + 1 < argc) {
            opt.intervalMs =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--iterations" && i + 1 < argc) {
            opt.iterations =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--once") {
            opt.iterations = 1;
            opt.clear = false;
        } else if (arg == "--no-clear") {
            opt.clear = false;
        } else {
            std::cerr << "usage: dyseld_top [--host H] [--port P] "
                         "[--interval MS] [--iterations N | --once] "
                         "[--no-clear]\n";
            return arg == "--help" ? 0 : 1;
        }
    }
    if (opt.port <= 0 || opt.port > 65535) {
        std::cerr << "dyseld_top: bad port\n";
        return 1;
    }

    unsigned frames = 0;
    for (;;) {
        if (!renderFrame(opt))
            return 1;
        ++frames;
        if (opt.iterations > 0 && frames >= opt.iterations)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt.intervalMs));
    }
}
