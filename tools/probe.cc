/**
 * @file
 * Calibration probe: runs every workload's variants standalone and
 * under DySel, printing relative times.  Development tool -- the
 * real figures come from the bench binaries.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "workloads/cutcp.hh"
#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/histogram.hh"
#include "workloads/kmeans.hh"
#include "workloads/particlefilter.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

using namespace dysel;
using namespace dysel::workloads;

namespace {

void
probe(const char *tag, Workload w, const DeviceFactory &factory)
{
    std::printf("== %s (%s, units=%llu, iters=%u)\n", tag, w.name.c_str(),
                (unsigned long long)w.units, w.iterations);
    OracleResult oracle = runOracle(factory, w);
    for (std::size_t i = 0; i < oracle.runs.size(); ++i) {
        const auto &r = oracle.runs[i];
        std::printf("   %-28s %10.3f ms  rel=%6.3f %s%s\n", r.name.c_str(),
                    r.elapsed / 1e6,
                    relative(r.elapsed, oracle.best()),
                    r.ok ? "" : "WRONG ",
                    i == oracle.bestIndex
                        ? "<-- best"
                        : (i == oracle.worstIndex ? "<-- worst" : ""));
    }
    for (auto orch : {runtime::Orchestration::Sync,
                      runtime::Orchestration::Async}) {
        runtime::LaunchOptions opt;
        opt.orch = orch;
        DyselRun dr = runDysel(factory, w, opt);
        std::printf("   dysel-%-5s -> %-18s %10.3f ms  rel=%6.3f %s "
                    "(chunks=%llu profU=%llu mode=%s)\n",
                    runtime::orchestrationName(orch),
                    dr.firstIteration.selectedName.c_str(),
                    dr.elapsed / 1e6, relative(dr.elapsed, oracle.best()),
                    dr.ok ? "" : "WRONG",
                    (unsigned long long)dr.firstIteration.eagerChunks,
                    (unsigned long long)dr.firstIteration.profiledUnits,
                    compiler::profilingModeName(dr.firstIteration.mode));
        for (const auto &p : dr.firstIteration.profiles)
            std::printf("        profile %-24s metric=%8.1f us span=%8.1f "
                        "us busy=%8.1f us\n",
                        p.name.c_str(), p.metric / 1e3, p.span / 1e3,
                        p.busy / 1e3);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    auto want = [&](const char *name) {
        if (argc < 2)
            return true;
        for (int i = 1; i < argc; ++i)
            if (std::strstr(name, argv[i]))
                return true;
        return false;
    };

    if (want("sgemm-lc"))
        probe("sgemm-lc", makeSgemmLcCpu(), cpuFactory());
    if (want("sgemm-vec"))
        probe("sgemm-vec", makeSgemmVectorCpu(), cpuFactory());
    if (want("sgemm-mixed-cpu"))
        probe("sgemm-mixed-cpu", makeSgemmMixed(), cpuFactory());
    if (want("sgemm-mixed-gpu"))
        probe("sgemm-mixed-gpu", makeSgemmMixed(), gpuFactory());
    if (want("spmv-csr-lc-random"))
        probe("spmv-csr-lc-random", makeSpmvCsrCpuLc(SpmvInput::Random),
              cpuFactory());
    if (want("spmv-csr-lc-diagonal"))
        probe("spmv-csr-lc-diagonal",
              makeSpmvCsrCpuLc(SpmvInput::Diagonal), cpuFactory());
    if (want("spmv-csr-inputdep-cpu-random"))
        probe("spmv-csr-inputdep-cpu-random",
              makeSpmvCsrCpuInputDep(SpmvInput::Random), cpuFactory());
    if (want("spmv-csr-inputdep-cpu-diagonal"))
        probe("spmv-csr-inputdep-cpu-diagonal",
              makeSpmvCsrCpuInputDep(SpmvInput::Diagonal), cpuFactory());
    if (want("spmv-csr-inputdep-gpu-random"))
        probe("spmv-csr-inputdep-gpu-random",
              makeSpmvCsrGpuInputDep(SpmvInput::Random), gpuFactory());
    if (want("spmv-csr-inputdep-gpu-diagonal"))
        probe("spmv-csr-inputdep-gpu-diagonal",
              makeSpmvCsrGpuInputDep(SpmvInput::Diagonal), gpuFactory());
    if (want("spmv-csr-placement-gpu"))
        probe("spmv-csr-placement-gpu", makeSpmvCsrGpuPlacement(),
              gpuFactory());
    if (want("spmv-jds-vec"))
        probe("spmv-jds-vec", makeSpmvJdsVectorCpu(), cpuFactory());
    if (want("spmv-jds-lc"))
        probe("spmv-jds-lc", makeSpmvJdsCpuLc(), cpuFactory());
    if (want("spmv-jds-mixed-cpu"))
        probe("spmv-jds-mixed-cpu", makeSpmvJdsCpuMixed(), cpuFactory());
    if (want("spmv-jds-mixed-gpu"))
        probe("spmv-jds-mixed-gpu", makeSpmvJdsGpuMixed(), gpuFactory());
    if (want("stencil-lc"))
        probe("stencil-lc", makeStencilLcCpu(), cpuFactory());
    if (want("stencil-mixed-cpu"))
        probe("stencil-mixed-cpu", makeStencilMixed(), cpuFactory());
    if (want("stencil-mixed-gpu"))
        probe("stencil-mixed-gpu", makeStencilMixed(), gpuFactory());
    if (want("kmeans-lc"))
        probe("kmeans-lc", makeKmeansLcCpu(), cpuFactory());
    if (want("cutcp-lc6"))
        probe("cutcp-lc6", makeCutcpLcCpu(6), cpuFactory());
    if (want("cutcp-mixed-cpu"))
        probe("cutcp-mixed-cpu", makeCutcpMixed(), cpuFactory());
    if (want("cutcp-mixed-gpu"))
        probe("cutcp-mixed-gpu", makeCutcpMixed(), gpuFactory());
    if (want("particlefilter"))
        probe("particlefilter", makeParticleFilterGpu(), gpuFactory());
    if (want("histogram-cpu"))
        probe("histogram-cpu", makeHistogram(), cpuFactory());
    if (want("histogram-gpu"))
        probe("histogram-gpu", makeHistogram(), gpuFactory());
    return 0;
}
