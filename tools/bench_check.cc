/**
 * @file
 * bench_check: validator for the machine-readable bench reports.
 *
 * Dispatches on the top-level "bench" field:
 *
 *   service_throughput -- bench/ext_service_throughput.  Structural
 *     and accounting invariants (every submitted job terminal,
 *     positive throughput, ordered latency percentiles, coalescing
 *     active in the coalesced run), plus one relative performance
 *     gate: the audited axis (2% selection-audit sampling) must stay
 *     within 5% of the coalesced axis's jobs/s and must report a
 *     finite mean-regret figure.  Absolute jobs/s is deliberately
 *     NOT checked -- CI machines vary too much -- but a same-process
 *     back-to-back ratio is stable.
 *
 *   batch_throughput -- bench/microbench_submit.  Per size class the
 *     batched and unbatched runs must produce equal output checksums
 *     (fusion must never change what a job computes), the batched run
 *     must actually fuse, the unbatched run must not, and -- the one
 *     relative performance gate in CI -- the smallest size class must
 *     reach at least 2x jobs/s batched over unbatched.  A ratio on
 *     the same machine in the same process is stable where absolute
 *     numbers are not, and the structural advantage it checks (one
 *     launch serving a whole batch) is far above 2x by construction.
 *
 *   fleet_federation -- dyseld --fleet.  The federation acceptance
 *     gates (DESIGN §13): every submitted job completed, no key was
 *     profiled on more than one replica (exactly-once fleet-wide
 *     profiling economy), the aggregate store hit rate reached at
 *     least 0.95, and the replicas converged to byte-identical
 *     stores after the drain barrier.
 *
 * Exits 0 when the report validates, 1 with a diagnostic otherwise.
 */
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "support/json.hh"

using dysel::support::Json;

namespace {

int
fail(const std::string &why)
{
    std::cerr << "bench_check: " << why << '\n';
    return 1;
}

/** Validate one run object ("baseline", "coalesced", "predict_*"). */
bool
checkRun(const Json &run, const std::string &name, std::string &why)
{
    if (!run.isObject()) {
        why = name + " is not an object";
        return false;
    }
    for (const char *key :
         {"config", "jobs", "wall_seconds", "jobs_per_sec",
          "p50_latency_us", "p99_latency_us", "profiled_units",
          "total_units", "profiled_unit_ratio", "coalesce",
          "store_hits", "store_hit_rate", "predict", "audit",
          "output_checksum"}) {
        if (!run.has(key)) {
            why = name + " is missing '" + key + "'";
            return false;
        }
    }
    const Json &jobs = run.at("jobs");
    const double submitted = jobs.numberOr("submitted", -1);
    const double completed = jobs.numberOr("completed", -1);
    const double failed = jobs.numberOr("failed", -1);
    const double shed = jobs.numberOr("shed", -1);
    if (submitted <= 0) {
        why = name + ": no jobs were submitted";
        return false;
    }
    if (completed < 0 || failed < 0 || shed < 0
        || submitted != completed + failed + shed) {
        why = name + ": job accounting does not reconcile ("
              + std::to_string(submitted) + " submitted vs "
              + std::to_string(completed) + " completed + "
              + std::to_string(failed) + " failed + "
              + std::to_string(shed) + " shed)";
        return false;
    }
    if (run.numberOr("wall_seconds", 0) <= 0
        || run.numberOr("jobs_per_sec", 0) <= 0) {
        why = name + ": non-positive wall_seconds or jobs_per_sec";
        return false;
    }
    const double p50 = run.numberOr("p50_latency_us", -1);
    const double p99 = run.numberOr("p99_latency_us", -1);
    if (p50 <= 0 || p99 < p50) {
        why = name + ": latency percentiles out of order (p50 "
              + std::to_string(p50) + ", p99 " + std::to_string(p99)
              + ")";
        return false;
    }
    const Json &co = run.at("coalesce");
    for (const char *key : {"leaders", "followers", "hits", "hit_rate"}) {
        if (!co.has(key)) {
            why = name + ".coalesce is missing '" + key + "'";
            return false;
        }
    }
    const Json &pr = run.at("predict");
    for (const char *key : {"hits", "misses", "demotions", "trained"}) {
        if (!pr.has(key)) {
            why = name + ".predict is missing '" + key + "'";
            return false;
        }
    }
    const Json &au = run.at("audit");
    for (const char *key :
         {"samples", "demotions", "probe_failures", "mean_regret"}) {
        if (!au.has(key)) {
            why = name + ".audit is missing '" + key + "'";
            return false;
        }
    }
    // The checksum is a 16-hex-digit string (doubles cannot carry a
    // 64-bit digest losslessly).
    const std::string sum = run.stringOr("output_checksum", "");
    if (sum.size() != 16
        || sum.find_first_not_of("0123456789abcdef")
               != std::string::npos) {
        why = name + ": output_checksum is not 16 hex digits ('" + sum
              + "')";
        return false;
    }
    return true;
}

/** The minimum batched-over-unbatched jobs/s ratio at the smallest
 * size class (where per-launch overhead dominates). */
constexpr double kMinSmallestClassSpeedup = 2.0;

/** The minimum audited-over-coalesced jobs/s ratio: 2% shadow
 * sampling must cost at most 5% throughput. */
constexpr double kMinAuditThroughputRatio = 0.95;

/** Validate a BENCH_batch_throughput.json report. */
int
checkBatchThroughput(const Json &root, const char *path)
{
    for (const char *key :
         {"batch", "classes", "smallest_class_speedup"})
        if (!root.has(key))
            return fail(std::string("missing top-level '") + key + "'");
    const Json &limits = root.at("batch");
    if (limits.numberOr("max_jobs", 0) < 2)
        return fail("batch.max_jobs below 2: nothing can fuse");

    const Json &classes = root.at("classes");
    if (!classes.isArray() || classes.items().empty())
        return fail("'classes' is not a non-empty array");

    std::string why;
    double minUnits = -1;
    double smallestSpeedup = 0;
    for (std::size_t i = 0; i < classes.items().size(); ++i) {
        const Json &cls = classes.items()[i];
        const std::string name = "classes[" + std::to_string(i) + "]";
        for (const char *key :
             {"units", "off", "on", "speedup", "checksums_equal"})
            if (!cls.has(key))
                return fail(name + " is missing '" + key + "'");
        const double units = cls.numberOr("units", 0);
        if (units <= 0)
            return fail(name + ": non-positive units");
        if (!checkRun(cls.at("off"), name + ".off", why)
            || !checkRun(cls.at("on"), name + ".on", why))
            return fail(why);

        // Fusion must never change what a job computes.
        if (!cls.boolOr("checksums_equal", false)
            || cls.at("off").stringOr("output_checksum", "?")
                   != cls.at("on").stringOr("output_checksum", "!"))
            return fail(name
                        + ": batched checksum differs from unbatched");

        // The off run must not fuse; the on run must.
        const Json &offBatch = cls.at("off").at("batch");
        const Json &onBatch = cls.at("on").at("batch");
        if (offBatch.numberOr("launches", -1) != 0)
            return fail(name + ".off recorded fused launches");
        if (onBatch.numberOr("jobs", 0) <= 0)
            return fail(name + ".on fused no jobs");
        if (onBatch.numberOr("avg_size", 0) <= 1.0)
            return fail(name + ".on mean batch occupancy is <= 1");

        const double speedup = cls.numberOr("speedup", 0);
        if (speedup <= 0)
            return fail(name + ": non-positive speedup");
        if (minUnits < 0 || units < minUnits) {
            minUnits = units;
            smallestSpeedup = speedup;
        }
    }

    // The one relative performance gate: batching must pay off where
    // per-launch overhead dominates.
    if (smallestSpeedup < kMinSmallestClassSpeedup)
        return fail("smallest size class (units="
                    + std::to_string(minUnits) + ") reached only "
                    + std::to_string(smallestSpeedup)
                    + "x batched over unbatched (gate: "
                    + std::to_string(kMinSmallestClassSpeedup) + "x)");
    if (root.numberOr("smallest_class_speedup", 0) != smallestSpeedup)
        return fail("smallest_class_speedup does not match classes[]");

    std::cout << "bench_check: " << path << " ok ("
              << classes.items().size() << " size classes, smallest "
              << minUnits << " units at " << smallestSpeedup
              << "x batched over unbatched)\n";
    return 0;
}

/** Validate a BENCH_service_throughput.json report. */
int
checkServiceThroughput(const Json &root, const char *path)
{
    for (const char *key :
         {"baseline", "coalesced", "audited", "predict_cold",
          "predict_pretrained", "speedup", "audit_throughput_ratio"})
        if (!root.has(key))
            return fail(std::string("missing top-level '") + key + "'");

    std::string why;
    for (const char *axis :
         {"baseline", "coalesced", "audited", "predict_cold",
          "predict_pretrained"})
        if (!checkRun(root.at(axis), axis, why))
            return fail(why);

    // The baseline run must not coalesce; the coalesced run must.
    if (root.at("baseline").at("coalesce").numberOr("hits", -1) != 0)
        return fail("baseline run recorded coalesce hits");
    if (root.at("coalesced").at("coalesce").numberOr("hits", 0) <= 0)
        return fail("coalesced run recorded no coalesce hits");

    const double baseProfiled =
        root.at("baseline").numberOr("profiled_units", 0);
    const double coProfiled =
        root.at("coalesced").numberOr("profiled_units", 0);
    if (coProfiled >= baseProfiled)
        return fail("coalescing did not reduce profiled units ("
                    + std::to_string(baseProfiled) + " -> "
                    + std::to_string(coProfiled) + ")");

    // Predictor-off axes must not predict; predictor-on axes must,
    // and must profile less than coalescing alone at an equal or
    // better warm-start rate.
    for (const char *axis : {"baseline", "coalesced"})
        if (root.at(axis).at("predict").numberOr("hits", -1) != 0)
            return fail(std::string(axis)
                        + " run recorded predict hits");
    const Json &cold = root.at("predict_cold");
    const Json &trained = root.at("predict_pretrained");
    if (cold.at("predict").numberOr("hits", 0) <= 0)
        return fail("predict_cold run recorded no predict hits");
    const double coldProfiled = cold.numberOr("profiled_units", 0);
    if (coldProfiled >= coProfiled)
        return fail("predictor did not reduce profiled units ("
                    + std::to_string(coProfiled) + " -> "
                    + std::to_string(coldProfiled) + ")");
    if (cold.numberOr("store_hit_rate", 0)
        < root.at("coalesced").numberOr("store_hit_rate", 1))
        return fail("predict_cold hit rate below coalesced");
    if (trained.numberOr("profiled_units", 0) > coldProfiled)
        return fail("pretrained predictor profiled more than cold");

    // The selection-quality audit: only the audited axis samples, it
    // actually samples, it reports a sane mean-regret figure, and --
    // the relative performance gate -- 2% shadow sampling costs at
    // most 5% of the comparable no-audit axis's throughput.
    const Json &audited = root.at("audited");
    for (const char *axis : {"baseline", "coalesced", "predict_cold",
                             "predict_pretrained"})
        if (root.at(axis).at("audit").numberOr("samples", -1) != 0)
            return fail(std::string(axis)
                        + " run recorded audit samples");
    const Json &audit = audited.at("audit");
    if (audit.numberOr("samples", 0) <= 0)
        return fail("audited run recorded no audit samples");
    const double meanRegret = audit.numberOr("mean_regret", -1);
    if (!(meanRegret >= 0) || !std::isfinite(meanRegret))
        return fail("audited run has no finite mean_regret figure ("
                    + std::to_string(meanRegret) + ")");
    // The ratio is the bench's median over interleaved
    // coalesced/audited pairs (not derivable from the two reported
    // best runs, which may come from different pairs).
    const double auditRatio =
        root.numberOr("audit_throughput_ratio", 0);
    if (!std::isfinite(auditRatio) || auditRatio <= 0)
        return fail("audit_throughput_ratio is not a positive number");
    if (auditRatio < kMinAuditThroughputRatio)
        return fail("audited run reached only "
                    + std::to_string(auditRatio)
                    + "x of coalesced jobs/s (gate: "
                    + std::to_string(kMinAuditThroughputRatio)
                    + "x)");

    // Selection policy must never change what a job computes; nor
    // may a shadow audit probe.
    const std::string baseSum =
        root.at("baseline").stringOr("output_checksum", "?");
    for (const char *axis :
         {"coalesced", "audited", "predict_cold", "predict_pretrained"})
        if (root.at(axis).stringOr("output_checksum", "") != baseSum)
            return fail(std::string("output checksum of ") + axis
                        + " differs from baseline");

    if (root.numberOr("speedup", 0) <= 0)
        return fail("non-positive speedup");

    std::cout << "bench_check: " << path << " ok (speedup "
              << root.numberOr("speedup", 0) << "x, coalesce hits "
              << root.at("coalesced").at("coalesce").numberOr("hits", 0)
              << ", predict hits "
              << cold.at("predict").numberOr("hits", 0) << " cold / "
              << trained.at("predict").numberOr("hits", 0)
              << " pretrained, audit " << audit.numberOr("samples", 0)
              << " samples at " << auditRatio
              << "x, mean regret " << meanRegret << ")\n";
    return 0;
}

/** The minimum aggregate store hit rate a federated fleet storm must
 * reach: near every launch after the one profiling pass per key must
 * be served warm, locally or via a peer. */
constexpr double kMinFleetHitRate = 0.95;

/** Validate a BENCH_fleet_federation.json report. */
int
checkFleetFederation(const Json &root, const char *path)
{
    for (const char *key :
         {"replicas", "jobs_submitted", "jobs_completed", "store_hits",
          "fleet_hit_rate", "fed_warm_hits", "fed_leases",
          "fed_fallbacks", "profiled_keys", "duplicate_profiled_keys",
          "converged", "per_replica"})
        if (!root.has(key))
            return fail(std::string("missing top-level '") + key + "'");

    const double replicas = root.numberOr("replicas", 0);
    if (replicas < 2)
        return fail("fewer than 2 replicas: nothing federates");

    const Json &perReplica = root.at("per_replica");
    if (!perReplica.isArray()
        || perReplica.items().size() != static_cast<std::size_t>(replicas))
        return fail("'per_replica' is not an array of 'replicas' "
                    "reports");
    for (std::size_t i = 0; i < perReplica.items().size(); ++i) {
        const Json &rep = perReplica.items()[i];
        const std::string name = "per_replica[" + std::to_string(i) + "]";
        if (!rep.isObject() || !rep.has("jobs") || !rep.has("fed"))
            return fail(name + " is missing 'jobs' or 'fed'");
        const Json &jobs = rep.at("jobs");
        if (jobs.numberOr("submitted", 0) <= 0)
            return fail(name + ": no jobs were submitted");
        if (jobs.numberOr("failed", -1) != 0)
            return fail(name + ": jobs failed");
    }

    // Every job terminal: a fleet storm that sheds or fails work can
    // fake a high hit rate on the survivors.
    const double submitted = root.numberOr("jobs_submitted", 0);
    const double completed = root.numberOr("jobs_completed", -1);
    if (submitted <= 0)
        return fail("no jobs were submitted");
    if (completed != submitted)
        return fail("job accounting does not reconcile ("
                    + std::to_string(submitted) + " submitted vs "
                    + std::to_string(completed) + " completed)");

    // Exactly-once fleet-wide profiling: rendezvous ownership plus the
    // lease protocol must keep any (signature, device, bucket) key
    // from being profiled on two replicas.
    const double profiledKeys = root.numberOr("profiled_keys", 0);
    if (profiledKeys <= 0)
        return fail("no keys were profiled: the storm never went cold");
    const double duplicates = root.numberOr("duplicate_profiled_keys", -1);
    if (duplicates != 0)
        return fail(std::to_string(duplicates)
                    + " keys were profiled on more than one replica");

    // The relative performance gate: with one profiling pass per key
    // fleet-wide, nearly every launch must be a store hit.
    const double hitRate = root.numberOr("fleet_hit_rate", 0);
    if (!std::isfinite(hitRate) || hitRate < kMinFleetHitRate)
        return fail("fleet store hit rate " + std::to_string(hitRate)
                    + " below gate "
                    + std::to_string(kMinFleetHitRate));

    // Byte-identical convergence after the drain barrier.
    if (!root.boolOr("converged", false))
        return fail("replicas did not converge to identical stores");

    std::cout << "bench_check: " << path << " ok (" << replicas
              << " replicas, " << submitted << " jobs, hit rate "
              << hitRate << ", " << profiledKeys
              << " keys profiled exactly once, warm hits "
              << root.numberOr("fed_warm_hits", 0) << ", leases "
              << root.numberOr("fed_leases", 0) << ", fallbacks "
              << root.numberOr("fed_fallbacks", 0) << ", converged)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::cerr << "usage: bench_check BENCH_<name>.json\n";
        return 1;
    }
    std::ifstream in(argv[1]);
    if (!in)
        return fail(std::string("cannot open ") + argv[1]);
    std::ostringstream buf;
    buf << in.rdbuf();

    Json root;
    try {
        root = Json::parse(buf.str());
    } catch (const std::exception &e) {
        return fail(std::string("parse error: ") + e.what());
    }
    if (!root.isObject())
        return fail("top level is not an object");
    if (!root.has("bench"))
        return fail("missing top-level 'bench'");

    const std::string bench = root.stringOr("bench", "");
    if (bench == "service_throughput")
        return checkServiceThroughput(root, argv[1]);
    if (bench == "batch_throughput")
        return checkBatchThroughput(root, argv[1]);
    if (bench == "fleet_federation")
        return checkFleetFederation(root, argv[1]);
    return fail("unknown bench '" + bench + "'");
}
