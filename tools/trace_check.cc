/**
 * @file
 * trace_check: structural validator for dyseld --trace output.
 *
 * Parses a Chrome trace-event JSON file and verifies it is the shape
 * chrome://tracing / Perfetto will accept: a "traceEvents" array
 * whose records carry a legal "ph", numeric "ts"/"pid"/"tid" (metadata
 * records excepted from "ts"), "dur" on "X" spans, and balanced B/E
 * nesting per track.
 *
 * With --require-storm it additionally asserts the PR-3 acceptance
 * criterion: at least one correlation id (args.cid) whose events
 * include a queue span, two or more distinct micro-profiling pass
 * spans ("profile:<variant>"), a guard.strike instant, a retry
 * instant, and a winner "execute" span.  CI runs the dyseld fault
 * storm with --trace and gates on this checker.
 *
 * With --summary it prints, after validation: event counts per
 * phase, per-track span totals (count + summed duration), the
 * busiest names, and the top-5 longest complete spans.
 *
 * Exits 0 when the file validates, 1 with a diagnostic otherwise.
 */
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hh"

using dysel::support::Json;

namespace {

struct CidActivity
{
    bool queueSpan = false;
    std::set<std::string> profilePasses;
    bool guardStrike = false;
    bool retry = false;
    bool executeSpan = false;

    bool storm() const
    {
        return queueSpan && profilePasses.size() >= 2 && guardStrike
               && retry && executeSpan;
    }
};

bool
legalPhase(const std::string &ph)
{
    return ph == "B" || ph == "E" || ph == "X" || ph == "i"
           || ph == "M";
}

int
fail(std::size_t index, const std::string &why)
{
    std::cerr << "trace_check: event " << index << ": " << why << '\n';
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool requireStorm = false;
    bool summary = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--require-storm") {
            requireStorm = true;
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--help" || path.size()) {
            std::cerr << "usage: trace_check [--require-storm] "
                         "[--summary] FILE\n";
            return arg == "--help" ? 0 : 1;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: trace_check [--require-storm] "
                     "[--summary] FILE\n";
        return 1;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_check: cannot open " << path << '\n';
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    Json root;
    try {
        root = Json::parse(buf.str());
    } catch (const std::exception &e) {
        std::cerr << "trace_check: " << path << ": " << e.what()
                  << '\n';
        return 1;
    }

    if (!root.isObject() || !root.has("traceEvents"))
        return fail(0, "root is not an object with traceEvents");
    const Json &events = root.at("traceEvents");
    if (!events.isArray())
        return fail(0, "traceEvents is not an array");
    if (events.items().empty())
        return fail(0, "traceEvents is empty");

    // Per-track B/E nesting stacks and per-cid activity.
    std::map<std::uint64_t, std::vector<std::string>> open;
    std::map<std::uint64_t, CidActivity> byCid;
    std::size_t spans = 0;

    // --summary accumulators.
    std::map<std::string, std::size_t> phaseCounts;
    struct TrackStats
    {
        std::size_t spans = 0;
        std::size_t instants = 0;
        double totalDurUs = 0.0;
    };
    std::map<std::uint64_t, TrackStats> tracks;
    std::map<std::uint64_t, std::string> trackNames;
    struct LongSpan
    {
        double durUs = 0.0;
        std::string name;
        std::uint64_t tid = 0;
    };
    std::vector<LongSpan> longest;

    const auto &items = events.items();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const Json &e = items[i];
        if (!e.isObject())
            return fail(i, "event is not an object");
        if (!e.has("ph"))
            return fail(i, "missing ph");
        const std::string ph = e.at("ph").asString();
        if (!legalPhase(ph))
            return fail(i, "illegal ph '" + ph + "'");
        if (!e.has("pid") || !e.has("tid"))
            return fail(i, "missing pid/tid");
        e.at("pid").asNumber(); // throws on a non-number
        const auto tid = e.at("tid").asUint();
        phaseCounts[ph]++;
        if (ph == "M") {
            // Metadata records carry no timestamp; harvest the track
            // name for the summary.
            if (e.stringOr("name", "") == "thread_name"
                && e.has("args"))
                trackNames[tid] =
                    e.at("args").stringOr("name", "");
            continue;
        }
        if (!e.has("ts"))
            return fail(i, "missing ts");
        if (e.at("ts").asNumber() < 0)
            return fail(i, "negative ts");
        const std::string name = e.stringOr("name", "");
        if (name.empty())
            return fail(i, "missing name");
        if (ph == "i") {
            // Perfetto drops scope-less instants on some tracks;
            // every instant the tracer emits must be thread-scoped.
            if (e.stringOr("s", "") != "t")
                return fail(i, "instant '" + name
                                   + "' without thread scope "
                                     "(s: \"t\")");
            tracks[tid].instants++;
        }

        if (ph == "X") {
            if (!e.has("dur"))
                return fail(i, "X span without dur");
            if (e.at("dur").asNumber() < 0)
                return fail(i, "negative dur");
            spans++;
            tracks[tid].spans++;
            tracks[tid].totalDurUs += e.at("dur").asNumber();
            longest.push_back({e.at("dur").asNumber(), name, tid});
        } else if (ph == "B") {
            open[tid].push_back(name);
            spans++;
            tracks[tid].spans++;
        } else if (ph == "E") {
            auto &stack = open[tid];
            if (stack.empty() || stack.back() != name)
                return fail(i, "E '" + name
                                   + "' does not close the innermost "
                                     "open span of tid "
                                   + std::to_string(tid));
            stack.pop_back();
        }

        std::uint64_t cid = 0;
        if (e.has("args") && e.at("args").isObject()
            && e.at("args").has("cid"))
            cid = e.at("args").at("cid").asUint();
        if (cid == 0)
            continue;
        CidActivity &act = byCid[cid];
        if (name == "queue" && ph == "X")
            act.queueSpan = true;
        else if (name.rfind("profile:", 0) == 0 && ph == "X")
            act.profilePasses.insert(name);
        else if (name == "guard.strike")
            act.guardStrike = true;
        else if (name == "retry")
            act.retry = true;
        else if (name == "execute" && ph == "X")
            act.executeSpan = true;
    }

    for (const auto &[tid, stack] : open)
        if (!stack.empty()) {
            std::cerr << "trace_check: tid " << tid << " has "
                      << stack.size() << " unclosed span(s), innermost '"
                      << stack.back() << "'\n";
            return 1;
        }

    std::size_t storms = 0;
    for (const auto &[cid, act] : byCid)
        if (act.storm())
            storms++;

    std::cout << "trace_check: " << items.size() << " events, " << spans
              << " spans, " << byCid.size() << " correlation ids, "
              << storms << " full storm lifecycle(s)\n";

    if (requireStorm && storms == 0) {
        std::cerr << "trace_check: --require-storm: no correlation id "
                     "with queue span + >=2 profile passes + "
                     "guard.strike + retry + execute span\n";
        return 1;
    }

    if (summary) {
        std::cout << "\nphases:";
        for (const auto &[ph, n] : phaseCounts)
            std::cout << "  " << ph << "=" << n;
        std::cout << "\n\ntracks:\n";
        for (const auto &[tid, st] : tracks) {
            const auto nameIt = trackNames.find(tid);
            std::cout << "  tid " << tid << " ("
                      << (nameIt != trackNames.end()
                                  && !nameIt->second.empty()
                              ? nameIt->second
                              : std::string("?"))
                      << "): " << st.spans << " spans, " << st.instants
                      << " instants, " << st.totalDurUs
                      << " us total span time\n";
        }
        std::sort(longest.begin(), longest.end(),
                  [](const LongSpan &a, const LongSpan &b) {
                      return a.durUs > b.durUs;
                  });
        std::cout << "\nlongest spans:\n";
        const std::size_t top = std::min<std::size_t>(5, longest.size());
        for (std::size_t i = 0; i < top; ++i)
            std::cout << "  " << longest[i].name << " (tid "
                      << longest[i].tid << "): " << longest[i].durUs
                      << " us\n";
    }
    return 0;
}
