/**
 * @file
 * dyseld: the DySel dispatch service driven end-to-end.
 *
 * Builds a two-device service (simulated CPU + GPU), warm-started
 * from a persistent selection store, and pushes a mix of the standard
 * workloads (sgemm, spmv, stencil) through it in two passes:
 *
 *   pass 1: the base mix -- cold keys micro-profile, and their
 *           selections land in the store;
 *   pass 2: the same mix again (every previously-seen key must run
 *           with profiledUnits == 0) plus an sgemm whose problem size
 *           falls in a different workload-size bucket, which must
 *           micro-profile despite the signature being warm.
 *
 * Afterwards prints the per-job log, the store contents, and the
 * metrics export.  Run it twice with the same --store file to see a
 * fully warm pass 1.
 */
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/dispatch_service.hh"
#include "support/table.hh"
#include "workloads/devices.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/stencil.hh"

using namespace dysel;

namespace {

struct Options
{
    std::string storePath = "dyseld.store.json";
    bool load = true;
    bool save = true;
    bool jsonMetrics = false;
};

/** One submitted job's bookkeeping: the workload instance (owns the
 *  buffers the job's args point at) plus its completion record. */
struct Entry
{
    std::string label;
    workloads::Workload w;
    serve::JobResult result;
    bool checked = false;
};

void
submitEntry(serve::DispatchService &svc, Entry &e, std::mutex &mu)
{
    serve::Job job;
    job.signature = e.w.signature;
    job.units = e.w.units;
    job.args = e.w.args;
    // Kernel variants capture their problem geometry, so a runtime
    // that already has this signature registered for a different
    // instance must be re-registered.
    job.ensureRegistered = [&e](runtime::Runtime &rt) {
        rt.removeKernel(e.w.signature);
        e.w.registerWith(rt);
    };
    job.done = [&e, &mu](const serve::JobResult &r) {
        std::lock_guard<std::mutex> lock(mu);
        e.result = r;
        e.checked = r.ok && e.w.check();
    };
    svc.submit(job);
}

void
printPass(const char *title, const std::vector<std::unique_ptr<Entry>> &entries)
{
    std::cout << "\n--- " << title << " ---\n";
    support::Table table({"workload", "signature", "device", "bucket",
                          "units", "warm", "profiledUnits", "selected",
                          "ok"});
    for (const auto &e : entries) {
        table.row()
            .cell(e->label)
            .cell(e->w.signature)
            .cell(e->result.ok ? e->result.deviceName : "-")
            .cell(std::uint64_t{store::bucketOf(e->w.units)})
            .cell(std::uint64_t{e->w.units})
            .cell(e->result.warmStart ? "yes" : "no")
            .cell(std::uint64_t{e->result.report.profiledUnits})
            .cell(e->result.ok ? e->result.report.selectedName
                               : e->result.error)
            .cell(e->checked ? "yes" : "NO");
    }
    table.print(std::cout);
}

/** The base workload mix; @p grown adds the bucket-changing sgemm. */
std::vector<std::unique_ptr<Entry>>
makeMix(bool grown)
{
    std::vector<std::unique_ptr<Entry>> mix;
    auto add = [&](const char *label, workloads::Workload w) {
        auto e = std::make_unique<Entry>();
        e->label = label;
        e->w = std::move(w);
        mix.push_back(std::move(e));
    };
    add("sgemm-mixed-256", workloads::makeSgemmMixed(256, 256, 256));
    add("spmv-csr-random",
        workloads::makeSpmvCsrCpuInputDep(workloads::SpmvInput::Random));
    add("spmv-csr-diagonal",
        workloads::makeSpmvCsrCpuInputDep(workloads::SpmvInput::Diagonal));
    add("stencil-mixed", workloads::makeStencilMixed());
    if (grown) {
        // Same signature as sgemm-mixed-256 but ~2300 units instead
        // of 1024: a different size bucket, so the store must miss
        // and the service must re-profile.
        add("sgemm-mixed-384", workloads::makeSgemmMixed(384, 384, 384));
    }
    return mix;
}

void
runPass(serve::DispatchService &svc,
        std::vector<std::unique_ptr<Entry>> &mix, std::mutex &mu)
{
    for (auto &e : mix)
        submitEntry(svc, *e, mu);
    svc.drain();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--store" && i + 1 < argc) {
            opt.storePath = argv[++i];
        } else if (arg == "--no-load") {
            opt.load = false;
        } else if (arg == "--no-save") {
            opt.save = false;
        } else if (arg == "--metrics" && i + 1 < argc) {
            opt.jsonMetrics = std::strcmp(argv[++i], "json") == 0;
        } else {
            std::cerr << "usage: dyseld [--store FILE] [--no-load] "
                         "[--no-save] [--metrics text|json]\n";
            return arg == "--help" ? 0 : 1;
        }
    }

    store::SelectionStore store;
    if (opt.load && store.loadFile(opt.storePath))
        std::cout << "loaded " << store.size() << " selection records"
                  << " from " << opt.storePath << " (warm start)\n";
    else
        std::cout << "starting with an empty selection store\n";

    serve::DispatchService svc(store);
    svc.addDevice(workloads::cpuFactory()());
    svc.addDevice(workloads::gpuFactory()());
    svc.start();

    std::mutex mu;
    auto pass1 = makeMix(false);
    runPass(svc, pass1, mu);
    printPass("pass 1 (base mix)", pass1);

    auto pass2 = makeMix(true);
    runPass(svc, pass2, mu);
    printPass("pass 2 (same mix + changed sgemm size bucket)", pass2);

    svc.stop();

    std::cout << "\n--- selection store ---\n";
    support::Table srec({"signature", "device", "bucket", "selected",
                         "launches", "profiled", "confidence",
                         "unit ns", "valid"});
    for (const auto &r : store.records()) {
        srec.row()
            .cell(r.signature)
            .cell(r.device.substr(0, r.device.find('/', 4)))
            .cell(std::uint64_t{r.bucket})
            .cell(r.selectedName)
            .cell(r.launches)
            .cell(r.profiledLaunches)
            .cell(r.confidence)
            .cell(r.unitTimeNs, 1)
            .cell(r.valid ? "yes" : "no");
    }
    srec.print(std::cout);
    std::cout << "store: " << store.hits() << " hits, " << store.misses()
              << " misses, " << store.driftInvalidations()
              << " drift invalidations\n";

    std::cout << "\n--- metrics ---\n";
    if (opt.jsonMetrics)
        std::cout << svc.metrics().renderJson().dump(2) << '\n';
    else
        std::cout << svc.metrics().renderText();

    if (opt.save) {
        if (store.saveFile(opt.storePath))
            std::cout << "\nsaved " << store.size() << " records to "
                      << opt.storePath << '\n';
        else
            std::cerr << "\nfailed to save store to " << opt.storePath
                      << '\n';
    }
    return 0;
}
