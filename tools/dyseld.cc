/**
 * @file
 * dyseld: the DySel dispatch service driven end-to-end.
 *
 * Builds a two-device service (simulated CPU + GPU), warm-started
 * from a persistent selection store, and pushes a mix of the standard
 * workloads (sgemm, spmv, stencil) through it in two passes:
 *
 *   pass 1: the base mix -- cold keys micro-profile, and their
 *           selections land in the store;
 *   pass 2: the same mix again (every previously-seen key must run
 *           with profiledUnits == 0) plus an sgemm whose problem size
 *           falls in a different workload-size bucket, which must
 *           micro-profile despite the signature being warm.
 *
 * With --fault-rate, a seeded fault injector per device drops or
 * slows launches; the service's retry / breaker / quarantine
 * machinery keeps the jobs completing, and the recovery counters and
 * the injectors' event logs are printed alongside the usual tables.
 * Run it twice with the same --store file to see a fully warm pass 1.
 *
 * With --guard, each runtime validates variants during
 * micro-profiling (output cross-check, canary redzones, NaN screen,
 * watchdog).  --variant-fault-rate P (implies --guard) makes each
 * variant name miscompiled with probability P -- persistently, the
 * same way a bad code path misbehaves on every run; the guard
 * excludes the culprits mid-selection and blacklists them into the
 * store, and the guard.* counters are printed against the injector
 * variant-fault logs.  Persistence failures (unreadable or corrupt
 * store file, failed save) exit nonzero; a missing store file is a
 * normal cold start.
 *
 * With --predict, a selection predictor learns from every profiling
 * pass and serves confident store misses without profiling; its model
 * is persisted in the store file's "predictor" extension, so a second
 * --predict run with the same --store warm-starts the model too.
 *
 * With --admin PORT, the live introspection plane (DESIGN §11) is
 * served over loopback HTTP for the lifetime of the run: /metrics,
 * /healthz, /readyz, /debug/selections, /debug/flight?worker=N,
 * /debug/trace, /debug/audit, /debug/predictor.  --admin-hold SEC
 * keeps the service (and the plane) up after the work completes, for
 * at most SEC seconds or until GET /quitquitquit -- the hook CI uses
 * to scrape a live service deterministically.  --audit-rate R samples
 * that fraction of warm hits through the selection-quality auditor.
 *
 * Fleet federation (DESIGN §13): `--loadgen --replica-id R
 * --fleet-size N --peer HOST:PORT...` joins this loadgen run to a
 * replicated fleet -- the selection store gossips deltas with every
 * peer over the admin HTTP front (which federation therefore
 * requires), cold keys are profiled only by their rendezvous-hash
 * owner, and after the storm the run blocks until the fleet's stores
 * converge byte-identically.  `dyseld --fleet N` is the one-command
 * driver: it forks N federated loadgen replicas of itself on
 * consecutive admin ports, waits, cross-checks convergence and the
 * fleet-wide exactly-once profiling invariant, and writes the
 * aggregated BENCH_fleet_federation.json.
 */
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "dysel/fed/replicator.hh"
#include "dysel/predict/predictor.hh"
#include "serve/admin/admin_plane.hh"
#include "serve/dispatch_service.hh"
#include "serve/loadgen.hh"
#include "support/net/http.hh"
#include "sim/fault.hh"
#include "support/table.hh"
#include "workloads/devices.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/stencil.hh"

using namespace dysel;

namespace {

struct Options
{
    std::string storePath = "dyseld.store.json";
    bool load = true;
    bool save = true;
    std::string metricsFormat = "text"; ///< text | json | prom
    std::string tracePath;              ///< Chrome trace JSON out
    bool guard = false;
    double faultRate = 0.0;
    double variantFaultRate = 0.0;
    std::uint64_t faultSeed = 0xfa01d;

    /**
     * --predict: attach a selection predictor (learned selection).
     * In demo mode its model is persisted in the store file's
     * "predictor" extension; in loadgen mode it rides the run.
     */
    bool predict = false;
    double predictThreshold = 0.65;

    /**
     * --max-batch / --batch-window: batch fusion knobs (DESIGN §10),
     * applied to the demo service and to loadgen runs alike.
     */
    std::size_t maxBatch = 1;
    sim::TimeNs batchWindowNs = 0;

    /** --loadgen: closed-loop load generator instead of the demo. */
    bool loadgen = false;
    serve::LoadGenConfig lg;
    std::string loadgenJson; ///< report file (--loadgen-json)

    /** --admin PORT: serve the introspection plane (-1 = off). */
    int adminPort = -1;
    /** --admin-hold SEC: keep serving after the work, bounded. */
    unsigned adminHoldSec = 0;
    /** --audit-rate R: selection-quality audit sampling rate. */
    double auditRate = 0.0;

    /** Federation (DESIGN §13): this replica's id and fleet shape. */
    std::uint32_t replicaId = 0;
    std::uint32_t fleetSize = 1;
    /** --peer HOST:PORT, repeatable: the other replicas' admin fronts. */
    std::vector<std::string> peers;
    int syncIntervalMs = 25;
    /** Post-storm convergence wait before declaring divergence. */
    int quiesceTimeoutMs = 20000;

    /** --fleet N: fork N federated loadgen replicas and aggregate. */
    unsigned fleetProcs = 0;
    std::string fleetJson = "BENCH_fleet_federation.json";
};

/**
 * The admin plane's HTTP front for one run: owns the plane and the
 * listener, maps HttpRequest -> AdminPlane, and implements the
 * /quitquitquit release used by --admin-hold.  The service passed to
 * attach() must outlive detach().
 */
class AdminRunner
{
  public:
    support::Status attach(std::uint16_t port,
                           serve::DispatchService &svc,
                           const predict::SelectionPredictor *predictor,
                           fed::Replicator *fedp = nullptr)
    {
        plane_ = std::make_unique<serve::admin::AdminPlane>(
            svc, predictor, fedp);
        return server_.start(
            port, [this](const support::net::HttpRequest &req) {
                support::net::HttpResponse out;
                if (req.target == "/quitquitquit") {
                    quit_.store(true, std::memory_order_release);
                    out.body = "bye\n";
                    return out;
                }
                const serve::admin::AdminResponse resp =
                    plane_->handleTarget(req.target);
                out.status = resp.status;
                out.contentType = resp.contentType;
                out.body = resp.body;
                return out;
            });
    }

    std::uint16_t port() const { return server_.port(); }

    /** Block until /quitquitquit or @p seconds elapse. */
    void hold(unsigned seconds)
    {
        const auto deadline = std::chrono::steady_clock::now()
                              + std::chrono::seconds(seconds);
        while (!quit_.load(std::memory_order_acquire)
               && std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }

    /** Stop the listener; safe before the service stops. */
    void detach()
    {
        server_.stop();
        plane_.reset();
    }

  private:
    std::unique_ptr<serve::admin::AdminPlane> plane_;
    support::net::HttpServer server_;
    std::atomic<bool> quit_{false};
};

/** Run the closed-loop load generator (`dyseld --loadgen`). */
int
runLoadGenMode(const Options &opt)
{
    serve::LoadGenConfig cfg = opt.lg;
    cfg.guard = opt.guard;
    cfg.faultRate = opt.faultRate;
    cfg.predict = opt.predict;
    cfg.predictThreshold = opt.predictThreshold;
    cfg.maxBatchJobs = opt.maxBatch;
    cfg.batchWindowNs = opt.batchWindowNs;
    cfg.auditRate = opt.auditRate;

    // Federation: the store is shared with a Replicator that gossips
    // it over the admin HTTP front, so federation requires --admin.
    const bool federated = !opt.peers.empty() || opt.fleetSize > 1;
    store::SelectionStore fedStore;
    std::unique_ptr<fed::Replicator> replicator;
    bool fedConverged = true;
    if (federated) {
        if (opt.adminPort < 0) {
            std::cerr << "dyseld: federation requires --admin PORT "
                         "(peers pull /fed/delta from it)\n";
            return 1;
        }
        if (opt.predict) {
            std::cerr << "dyseld: --predict and federation are "
                         "mutually exclusive in loadgen mode\n";
            return 1;
        }
        if (opt.load) {
            const support::Status loaded =
                fedStore.loadFile(opt.storePath);
            if (!loaded.ok()
                && loaded.code() != support::StatusCode::NotFound) {
                std::cerr << "dyseld: " << loaded.toString() << '\n';
                return 1;
            }
        }
        fed::ReplicatorConfig rcfg;
        rcfg.replica = opt.replicaId;
        rcfg.fleetSize = opt.fleetSize;
        rcfg.peers = opt.peers;
        rcfg.syncIntervalMs = opt.syncIntervalMs;
        replicator =
            std::make_unique<fed::Replicator>(fedStore, rcfg);
        cfg.externalStore = &fedStore;
        cfg.federation = replicator.get();
    }

    AdminRunner admin;
    if (opt.adminPort >= 0) {
        cfg.onStart = [&](serve::DispatchService &svc) {
            const support::Status st = admin.attach(
                static_cast<std::uint16_t>(opt.adminPort), svc,
                nullptr, replicator.get());
            if (st.ok())
                std::cout << "admin plane on http://127.0.0.1:"
                          << admin.port() << "/\n"
                          << std::flush;
            else
                std::cerr << "dyseld: admin plane failed: "
                          << st.toString() << '\n';
            if (replicator) {
                replicator->start();
                // Hold the storm until the fleet is connected: a
                // cold miss against an unreachable owner profiles
                // locally, which is safe but duplicates the fleet's
                // one profiling pass.
                if (!replicator->awaitPeers(opt.quiesceTimeoutMs))
                    std::cerr << "dyseld: warning: not all peers "
                                 "reachable; cold misses may "
                                 "profile locally\n";
            }
        };
        cfg.onStop = [&](serve::DispatchService &) {
            if (replicator) {
                // Drain-time anti-entropy: advertise drained, then
                // keep syncing until every replica reports our exact
                // store digest (or the timeout says divergence).
                replicator->markDrained();
                fedConverged = replicator->awaitQuiescence(
                    opt.quiesceTimeoutMs);
                std::cout << "federation: "
                          << (fedConverged ? "converged"
                                           : "NOT CONVERGED")
                          << ", " << fedStore.size()
                          << " records fleet-wide\n"
                          << std::flush;
            }
            if (opt.adminHoldSec > 0) {
                std::cout << "admin hold: up to " << opt.adminHoldSec
                          << "s (GET /quitquitquit to release)\n"
                          << std::flush;
                admin.hold(opt.adminHoldSec);
            }
            if (replicator)
                replicator->stop();
            admin.detach();
        };
    }
    std::cout << "loadgen: " << cfg.submitters << " submitters x "
              << cfg.jobsPerSubmitter << " jobs -> " << cfg.devices
              << " devices, " << cfg.signatures << " signatures x "
              << cfg.sizeClasses << " size classes"
              << (cfg.burst > 1
                      ? ", burst " + std::to_string(cfg.burst)
                      : std::string())
              << (cfg.maxBatchJobs > 1
                      ? ", batch <= " + std::to_string(cfg.maxBatchJobs)
                            + " (window "
                            + std::to_string(cfg.batchWindowNs) + " ns)"
                      : std::string())
              << (cfg.sweep ? ", lockstep sweep" : "")
              << (cfg.coalesce ? "" : ", coalescing off")
              << (cfg.maxQueueDepth > 0
                      ? (cfg.admission == serve::AdmissionPolicy::Shed
                             ? ", shed at depth "
                             : ", backpressure at depth ")
                            + std::to_string(cfg.maxQueueDepth)
                      : std::string())
              << (cfg.guard ? ", guard on" : "")
              << (cfg.predict
                      ? ", predict on (threshold "
                            + std::to_string(cfg.predictThreshold)
                            + (cfg.pretrainLaps > 0
                                   ? ", " + std::to_string(
                                         cfg.pretrainLaps)
                                         + " pretrain laps"
                                   : std::string())
                            + ")"
                      : std::string())
              << (cfg.faultRate > 0.0
                      ? ", fault rate " + std::to_string(cfg.faultRate)
                      : std::string())
              << (cfg.auditRate > 0.0
                      ? ", audit rate " + std::to_string(cfg.auditRate)
                      : std::string())
              << '\n';

    const serve::LoadGenReport rep = serve::runLoadGen(cfg);

    support::Table table({"metric", "value"});
    table.row().cell("jobs submitted").cell(rep.jobsSubmitted);
    table.row().cell("jobs completed").cell(rep.jobsCompleted);
    table.row().cell("jobs failed").cell(rep.jobsFailed);
    table.row().cell("jobs shed").cell(rep.jobsShed);
    table.row().cell("wall seconds").cell(rep.wallSeconds, 3);
    table.row().cell("jobs/s").cell(rep.jobsPerSec, 0);
    table.row().cell("p50 latency (us)").cell(rep.p50LatencyUs, 1);
    table.row().cell("p99 latency (us)").cell(rep.p99LatencyUs, 1);
    table.row().cell("profiled units").cell(rep.profiledUnits);
    table.row().cell("profiled ratio").cell(rep.profiledUnitRatio, 4);
    table.row().cell("store hits").cell(rep.storeHits);
    table.row().cell("coalesce leaders").cell(rep.coalesceLeaders);
    table.row().cell("coalesce followers").cell(rep.coalesceFollowers);
    table.row().cell("coalesce hits").cell(rep.coalesceHits);
    table.row().cell("coalesce hit rate").cell(rep.coalesceHitRate, 3);
    if (cfg.maxBatchJobs > 1) {
        table.row().cell("batch launches").cell(rep.batchLaunches);
        table.row().cell("batched jobs").cell(rep.batchJobs);
        table.row().cell("batch demotions").cell(rep.batchDemoted);
        table.row().cell("avg batch size").cell(rep.avgBatchSize, 2);
    }
    if (opt.predict) {
        table.row().cell("predict hits").cell(rep.predictHits);
        table.row().cell("predict misses").cell(rep.predictMisses);
        table.row().cell("predict demotions").cell(rep.predictDemotions);
        table.row().cell("predict trained").cell(rep.predictTrained);
    }
    if (cfg.auditRate > 0.0) {
        table.row().cell("audit samples").cell(rep.auditSamples);
        table.row().cell("audit demotions").cell(rep.auditDemotions);
        table.row()
            .cell("audit probe failures")
            .cell(rep.auditProbeFailures);
        table.row().cell("audit mean regret").cell(rep.auditMeanRegret, 4);
    }
    if (federated) {
        table.row().cell("fed warm hits").cell(rep.fedWarmHits);
        table.row().cell("fed leases").cell(rep.fedLeases);
        table.row().cell("fed fallbacks").cell(rep.fedFallbacks);
        table.row()
            .cell("fed profiled keys")
            .cell(static_cast<std::uint64_t>(rep.profiledKeys.size()));
    }
    table.print(std::cout);

    if (!opt.loadgenJson.empty()) {
        std::ofstream out(opt.loadgenJson);
        if (!out) {
            std::cerr << "dyseld: cannot write loadgen report to "
                      << opt.loadgenJson << '\n';
            return 1;
        }
        out << rep.toJson().dump(2) << '\n';
        if (!out.flush()) {
            std::cerr << "dyseld: loadgen report write failed\n";
            return 1;
        }
        std::cout << "wrote " << opt.loadgenJson << '\n';
    }

    // Every submitted job must be terminal, one way or the other.
    if (rep.jobsSubmitted
        != rep.jobsCompleted + rep.jobsFailed + rep.jobsShed) {
        std::cerr << "dyseld: loadgen job accounting does not "
                     "reconcile\n";
        return 1;
    }
    if (federated && opt.save) {
        const support::Status saved = fedStore.saveFile(opt.storePath);
        if (!saved.ok()) {
            std::cerr << "dyseld: " << saved.toString() << '\n';
            return 1;
        }
        std::cout << "saved " << fedStore.size() << " records to "
                  << opt.storePath << '\n';
    }
    if (federated && !fedConverged) {
        std::cerr << "dyseld: fleet stores did not converge within "
                  << opt.quiesceTimeoutMs << " ms\n";
        return 1;
    }
    return 0;
}

/**
 * `dyseld --fleet N`: fork N federated loadgen replicas of this
 * binary on consecutive admin ports, wait for all of them, then
 * verify fleet-wide convergence (byte-identical saved stores) and
 * the exactly-once profiling invariant from the per-replica reports,
 * and write the aggregated BENCH_fleet_federation.json.
 */
int
runFleetMode(const Options &opt, int argc, char **argv)
{
    const unsigned n = opt.fleetProcs;
    const int basePort = opt.adminPort >= 0 ? opt.adminPort : 18490;
    auto storePath = [&](unsigned r) {
        return opt.storePath + ".replica" + std::to_string(r);
    };
    auto reportPath = [&](unsigned r) {
        return opt.storePath + ".report" + std::to_string(r) + ".json";
    };

    // Pass the user's loadgen shape through; strip the driver flag
    // and everything the driver assigns per replica.
    std::vector<std::string> base;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const bool takesValue =
            a == "--fleet" || a == "--store" || a == "--admin"
            || a == "--loadgen-json" || a == "--replica-id"
            || a == "--fleet-size" || a == "--peer"
            || a == "--fleet-json";
        if (takesValue) {
            if (i + 1 < argc)
                ++i;
            continue;
        }
        if (a == "--loadgen" || a == "--no-load" || a == "--no-save")
            continue;
        base.push_back(a);
    }

    std::vector<pid_t> pids;
    for (unsigned r = 0; r < n; ++r) {
        std::vector<std::string> args;
        args.push_back("dyseld");
        args.insert(args.end(), base.begin(), base.end());
        args.push_back("--loadgen");
        args.push_back("--no-load");
        args.push_back("--replica-id");
        args.push_back(std::to_string(r));
        args.push_back("--fleet-size");
        args.push_back(std::to_string(n));
        for (unsigned p = 0; p < n; ++p) {
            if (p == r)
                continue;
            args.push_back("--peer");
            args.push_back("127.0.0.1:"
                           + std::to_string(basePort + p));
        }
        args.push_back("--admin");
        args.push_back(std::to_string(basePort + r));
        args.push_back("--store");
        args.push_back(storePath(r));
        args.push_back("--loadgen-json");
        args.push_back(reportPath(r));

        const pid_t pid = fork();
        if (pid < 0) {
            std::cerr << "dyseld: fork failed\n";
            return 1;
        }
        if (pid == 0) {
            std::vector<char *> cargs;
            for (auto &a : args)
                cargs.push_back(a.data());
            cargs.push_back(nullptr);
            execv("/proc/self/exe", cargs.data());
            std::cerr << "dyseld: execv failed\n";
            _exit(127);
        }
        pids.push_back(pid);
    }

    bool childrenOk = true;
    for (unsigned r = 0; r < n; ++r) {
        int status = 0;
        waitpid(pids[r], &status, 0);
        const bool ok =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!ok) {
            std::cerr << "dyseld: replica " << r
                      << " exited with status " << status << '\n';
            childrenOk = false;
        }
    }

    // Cross-check convergence from the saved stores: the serialized
    // form excludes local-only state (seqs, hit counters), so
    // converged replicas dump byte-identical documents.
    bool converged = childrenOk;
    std::vector<std::string> dumps;
    for (unsigned r = 0; r < n; ++r) {
        store::SelectionStore st;
        const support::Status loaded = st.loadFile(storePath(r));
        if (!loaded.ok()) {
            std::cerr << "dyseld: replica " << r << " store: "
                      << loaded.toString() << '\n';
            converged = false;
            dumps.push_back("");
            continue;
        }
        dumps.push_back(st.toJson().dump(0));
    }
    for (unsigned r = 1; r < dumps.size(); ++r)
        if (dumps[r] != dumps[0])
            converged = false;

    // Aggregate the per-replica reports: fleet hit rate plus the
    // exactly-once invariant (no key profiled by two replicas -- or
    // twice by one).
    std::uint64_t submitted = 0, completed = 0, storeHits = 0;
    std::uint64_t warmHits = 0, leases = 0, fallbacks = 0;
    std::set<std::string> seenKeys;
    std::uint64_t duplicateKeys = 0;
    support::Json perReplica = support::Json::array();
    for (unsigned r = 0; r < n; ++r) {
        std::ifstream in(reportPath(r));
        std::stringstream ss;
        ss << in.rdbuf();
        support::Json rep;
        try {
            rep = support::Json::parse(ss.str());
        } catch (const std::exception &e) {
            std::cerr << "dyseld: replica " << r << " report: "
                      << e.what() << '\n';
            converged = false;
            continue;
        }
        submitted += static_cast<std::uint64_t>(
            rep.at("jobs").at("submitted").asNumber());
        completed += static_cast<std::uint64_t>(
            rep.at("jobs").at("completed").asNumber());
        storeHits += static_cast<std::uint64_t>(
            rep.at("store_hits").asNumber());
        const support::Json &fed = rep.at("fed");
        warmHits += static_cast<std::uint64_t>(
            fed.at("warm_hits").asNumber());
        leases +=
            static_cast<std::uint64_t>(fed.at("leases").asNumber());
        fallbacks += static_cast<std::uint64_t>(
            fed.at("fallbacks").asNumber());
        for (const support::Json &k :
             fed.at("profiled_key_list").items()) {
            if (!seenKeys.insert(k.asString()).second)
                duplicateKeys++;
        }
        perReplica.push(std::move(rep));
    }
    const double fleetHitRate =
        submitted > 0
            ? static_cast<double>(storeHits)
                  / static_cast<double>(submitted)
            : 0.0;

    support::Json out = support::Json::object();
    out.set("bench", support::Json("fleet_federation"));
    out.set("replicas", support::Json(n));
    out.set("jobs_submitted",
            support::Json(static_cast<double>(submitted)));
    out.set("jobs_completed",
            support::Json(static_cast<double>(completed)));
    out.set("store_hits",
            support::Json(static_cast<double>(storeHits)));
    out.set("fleet_hit_rate", support::Json(fleetHitRate));
    out.set("fed_warm_hits",
            support::Json(static_cast<double>(warmHits)));
    out.set("fed_leases", support::Json(static_cast<double>(leases)));
    out.set("fed_fallbacks",
            support::Json(static_cast<double>(fallbacks)));
    out.set("profiled_keys",
            support::Json(static_cast<double>(seenKeys.size())));
    out.set("duplicate_profiled_keys",
            support::Json(static_cast<double>(duplicateKeys)));
    out.set("converged", support::Json(converged));
    out.set("per_replica", std::move(perReplica));

    std::ofstream outFile(opt.fleetJson);
    if (!outFile) {
        std::cerr << "dyseld: cannot write " << opt.fleetJson << '\n';
        return 1;
    }
    outFile << out.dump(2) << '\n';
    if (!outFile.flush()) {
        std::cerr << "dyseld: fleet report write failed\n";
        return 1;
    }

    std::cout << "fleet: " << n << " replicas, " << submitted
              << " jobs, hit rate " << fleetHitRate << ", "
              << seenKeys.size() << " keys profiled ("
              << duplicateKeys << " duplicates), "
              << (converged ? "converged" : "NOT CONVERGED")
              << "; wrote " << opt.fleetJson << '\n';
    return converged && duplicateKeys == 0 ? 0 : 1;
}

/** One submitted job's bookkeeping: the workload instance (owns the
 *  buffers the job's args point at) plus its completion handle. */
struct Entry
{
    std::string label;
    workloads::Workload w;
    serve::JobHandle handle;
    bool checked = false;
};

void
submitEntry(serve::DispatchService &svc, Entry &e)
{
    serve::JobSpec spec;
    spec.signature(e.w.signature).units(e.w.units).args(e.w.args);
    // Kernel variants capture their problem geometry, so a runtime
    // that already has this signature registered for a different
    // instance must be re-registered.  (A per-job installer also
    // keeps the demo jobs out of batch fusion -- each instance owns
    // distinct buffers.)
    spec.ensureRegistered([&e](runtime::Runtime &rt) {
        rt.removeKernel(e.w.signature);
        e.w.registerWith(rt);
    });
    svc.submitMany(std::span<const serve::JobSpec>(&spec, 1),
                   std::span<serve::JobHandle>(&e.handle, 1));
}

void
printPass(const char *title, const std::vector<std::unique_ptr<Entry>> &entries)
{
    std::cout << "\n--- " << title << " ---\n";
    support::Table table({"workload", "signature", "device", "bucket",
                          "units", "warm", "attempts", "profiledUnits",
                          "selected", "ok"});
    for (const auto &e : entries) {
        const serve::JobResult &r = e->handle.result();
        table.row()
            .cell(e->label)
            .cell(e->w.signature)
            .cell(r.ok() ? r.deviceName : "-")
            .cell(std::uint64_t{store::bucketOf(e->w.units)})
            .cell(std::uint64_t{e->w.units})
            .cell(r.warmStart ? "yes" : "no")
            .cell(std::uint64_t{r.attempts})
            .cell(std::uint64_t{r.report.profiledUnits})
            .cell(r.ok() ? r.report.selectedName : r.status.toString())
            .cell(e->checked ? "yes" : "NO");
    }
    table.print(std::cout);
}

/** The base workload mix; @p grown adds the bucket-changing sgemm. */
std::vector<std::unique_ptr<Entry>>
makeMix(bool grown)
{
    std::vector<std::unique_ptr<Entry>> mix;
    auto add = [&](const char *label, workloads::Workload w) {
        auto e = std::make_unique<Entry>();
        e->label = label;
        e->w = std::move(w);
        mix.push_back(std::move(e));
    };
    add("sgemm-mixed-256", workloads::makeSgemmMixed(256, 256, 256));
    add("spmv-csr-random",
        workloads::makeSpmvCsrCpuInputDep(workloads::SpmvInput::Random));
    add("spmv-csr-diagonal",
        workloads::makeSpmvCsrCpuInputDep(workloads::SpmvInput::Diagonal));
    add("stencil-mixed", workloads::makeStencilMixed());
    if (grown) {
        // Same signature as sgemm-mixed-256 but ~2300 units instead
        // of 1024: a different size bucket, so the store must miss
        // and the service must re-profile.
        add("sgemm-mixed-384", workloads::makeSgemmMixed(384, 384, 384));
    }
    return mix;
}

void
runPass(serve::DispatchService &svc,
        std::vector<std::unique_ptr<Entry>> &mix)
{
    for (auto &e : mix)
        submitEntry(svc, *e);
    svc.drain();
    for (auto &e : mix)
        e->checked = e->handle.result().ok() && e->w.check();
}

void
printInjector(const char *name, const sim::FaultInjector &inj)
{
    std::cout << name << ": " << inj.total() << " faults ("
              << inj.count(sim::FaultKind::LaunchFail) << " launch-fail, "
              << inj.count(sim::FaultKind::Hang) << " hang, "
              << inj.count(sim::FaultKind::LatencySpike) << " spike)";
    if (inj.variantTotal() > 0) {
        std::cout << ", " << inj.variantTotal() << " variant faults ("
                  << inj.variantCount(sim::VariantFaultKind::CorruptOutput)
                  << " corrupt, "
                  << inj.variantCount(sim::VariantFaultKind::OobWrite)
                  << " oob, "
                  << inj.variantCount(sim::VariantFaultKind::NanOutput)
                  << " nan, "
                  << inj.variantCount(sim::VariantFaultKind::KernelHang)
                  << " hang)";
    }
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--store" && i + 1 < argc) {
            opt.storePath = argv[++i];
        } else if (arg == "--no-load") {
            opt.load = false;
        } else if (arg == "--no-save") {
            opt.save = false;
        } else if (arg == "--metrics" && i + 1 < argc) {
            opt.metricsFormat = argv[++i];
            if (opt.metricsFormat != "text"
                && opt.metricsFormat != "json"
                && opt.metricsFormat != "prom") {
                std::cerr << "dyseld: unknown metrics format '"
                          << opt.metricsFormat << "'\n";
                return 1;
            }
        } else if (arg == "--trace" && i + 1 < argc) {
            opt.tracePath = argv[++i];
        } else if (arg == "--fault-rate" && i + 1 < argc) {
            opt.faultRate = std::atof(argv[++i]);
        } else if (arg == "--fault-seed" && i + 1 < argc) {
            opt.faultSeed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--guard") {
            opt.guard = true;
        } else if (arg == "--variant-fault-rate" && i + 1 < argc) {
            opt.variantFaultRate = std::atof(argv[++i]);
            opt.guard = true; // pointless without the guard watching
        } else if (arg == "--predict") {
            opt.predict = true;
        } else if (arg == "--predict-threshold" && i + 1 < argc) {
            opt.predictThreshold = std::atof(argv[++i]);
        } else if (arg == "--max-batch" && i + 1 < argc) {
            opt.maxBatch = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--batch-window" && i + 1 < argc) {
            opt.batchWindowNs = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--burst" && i + 1 < argc) {
            opt.lg.burst = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--predict-pretrain" && i + 1 < argc) {
            opt.lg.pretrainLaps =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--loadgen") {
            opt.loadgen = true;
        } else if (arg == "--submitters" && i + 1 < argc) {
            opt.lg.submitters =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--devices" && i + 1 < argc) {
            opt.lg.devices =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--signatures" && i + 1 < argc) {
            opt.lg.signatures =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--size-classes" && i + 1 < argc) {
            opt.lg.sizeClasses =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            opt.lg.jobsPerSubmitter = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--base-units" && i + 1 < argc) {
            opt.lg.baseUnits = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--variants" && i + 1 < argc) {
            opt.lg.variants =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--profile-repeats" && i + 1 < argc) {
            opt.lg.profileRepeats =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--sweep") {
            opt.lg.sweep = true;
        } else if (arg == "--no-coalesce") {
            opt.lg.coalesce = false;
        } else if (arg == "--no-affinity") {
            opt.lg.affinity = false;
        } else if (arg == "--queue-depth" && i + 1 < argc) {
            opt.lg.maxQueueDepth = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--admission" && i + 1 < argc) {
            const std::string mode = argv[++i];
            if (mode == "block") {
                opt.lg.admission = serve::AdmissionPolicy::Block;
            } else if (mode == "shed") {
                opt.lg.admission = serve::AdmissionPolicy::Shed;
            } else {
                std::cerr << "dyseld: unknown admission mode '" << mode
                          << "' (block|shed)\n";
                return 1;
            }
        } else if (arg == "--seed" && i + 1 < argc) {
            opt.lg.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--loadgen-json" && i + 1 < argc) {
            opt.loadgenJson = argv[++i];
        } else if (arg == "--admin" && i + 1 < argc) {
            opt.adminPort = std::atoi(argv[++i]);
            if (opt.adminPort < 0 || opt.adminPort > 65535) {
                std::cerr << "dyseld: bad admin port\n";
                return 1;
            }
        } else if (arg == "--admin-hold" && i + 1 < argc) {
            opt.adminHoldSec =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--audit-rate" && i + 1 < argc) {
            opt.auditRate = std::atof(argv[++i]);
        } else if (arg == "--replica-id" && i + 1 < argc) {
            opt.replicaId =
                static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--fleet-size" && i + 1 < argc) {
            opt.fleetSize =
                static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--peer" && i + 1 < argc) {
            opt.peers.push_back(argv[++i]);
        } else if (arg == "--sync-interval-ms" && i + 1 < argc) {
            opt.syncIntervalMs = std::atoi(argv[++i]);
        } else if (arg == "--quiesce-timeout-ms" && i + 1 < argc) {
            opt.quiesceTimeoutMs = std::atoi(argv[++i]);
        } else if (arg == "--fleet" && i + 1 < argc) {
            opt.fleetProcs =
                static_cast<unsigned>(std::atoi(argv[++i]));
            if (opt.fleetProcs < 2) {
                std::cerr << "dyseld: --fleet needs N >= 2\n";
                return 1;
            }
        } else if (arg == "--fleet-json" && i + 1 < argc) {
            opt.fleetJson = argv[++i];
        } else {
            std::cerr << "usage: dyseld [--store FILE] [--no-load] "
                         "[--no-save] [--metrics text|json|prom] "
                         "[--trace FILE] [--fault-rate P] "
                         "[--fault-seed S] [--guard] "
                         "[--variant-fault-rate P] [--predict] "
                         "[--predict-threshold X] [--max-batch N] "
                         "[--batch-window NS]\n"
                         "       dyseld --loadgen [--submitters N] "
                         "[--devices N] [--signatures N] "
                         "[--size-classes N] [--jobs N] "
                         "[--base-units N] [--variants N] "
                         "[--profile-repeats N] [--sweep] "
                         "[--no-coalesce] [--no-affinity] "
                         "[--queue-depth N] [--admission block|shed] "
                         "[--burst N] [--max-batch N] "
                         "[--batch-window NS] "
                         "[--fault-rate P] [--guard] [--predict] "
                         "[--predict-threshold X] "
                         "[--predict-pretrain N] [--seed S] "
                         "[--loadgen-json FILE]\n"
                         "       federation (with --loadgen --admin): "
                         "[--replica-id R] [--fleet-size N] "
                         "[--peer HOST:PORT]... "
                         "[--sync-interval-ms MS] "
                         "[--quiesce-timeout-ms MS]\n"
                         "       dyseld --fleet N [loadgen flags] "
                         "[--fleet-json FILE]  (multi-process fleet "
                         "storm)\n"
                         "       common: [--admin PORT] "
                         "[--admin-hold SEC] [--audit-rate R]\n";
            return arg == "--help" ? 0 : 1;
        }
    }

    // Reject nonsense service configs at the flag boundary -- the
    // same typed check the DispatchService ctor enforces, but with a
    // user-facing message instead of an exception.
    {
        serve::ServiceConfig check;
        check.maxQueueDepth = opt.loadgen ? opt.lg.maxQueueDepth : 0;
        check.admission = opt.lg.admission;
        check.batch.maxJobs = opt.maxBatch;
        check.batch.windowNs = opt.batchWindowNs;
        check.audit.sampleRate = opt.auditRate;
        if (const support::Status st = check.validate(); !st.ok()) {
            std::cerr << "dyseld: " << st.toString() << '\n';
            return 1;
        }
    }

    if (opt.fleetProcs >= 2)
        return runFleetMode(opt, argc, argv);

    if (opt.loadgen)
        return runLoadGenMode(opt);

    store::SelectionStore store;
    if (opt.load) {
        const support::Status loaded = store.loadFile(opt.storePath);
        if (loaded.ok()) {
            std::cout << "loaded " << store.size()
                      << " selection records from " << opt.storePath
                      << " (warm start)\n";
        } else if (loaded.code() == support::StatusCode::NotFound) {
            std::cout << "starting with an empty selection store\n";
        } else {
            // Corrupt persistence is not silently ignored: serving
            // stale-but-valid selections is fine, serving from a
            // half-read store is not.
            std::cerr << "dyseld: " << loaded.toString() << '\n';
            return 1;
        }
    } else {
        std::cout << "starting with an empty selection store\n";
    }

    // Per-device injectors: 70% of faults drop the launch, 20% slow
    // it down, 10% hang the device for a while.  Variant faults are
    // drawn once per variant name and persist (a miscompiled variant
    // misbehaves on every execution).
    sim::FaultConfig fcfg;
    fcfg.launchFailProb = opt.faultRate * 0.7;
    fcfg.latencySpikeProb = opt.faultRate * 0.2;
    fcfg.hangProb = opt.faultRate * 0.1;
    fcfg.variantFaultProb = opt.variantFaultRate;
    fcfg.seed = opt.faultSeed;
    sim::FaultInjector cpuFaults(fcfg);
    fcfg.seed = opt.faultSeed + 1;
    sim::FaultInjector gpuFaults(fcfg);

    // The predictor outlives the service: ~DispatchService detaches
    // the store observers it installed before the predictor dies.
    predict::PredictorConfig pcfg;
    pcfg.threshold = opt.predictThreshold;
    predict::SelectionPredictor predictor(pcfg);
    if (opt.predict) {
        if (auto model = store.extension("predictor")) {
            try {
                predictor.loadJson(*model);
                std::cout << "predictor warm start: "
                          << predictor.winnerCount() << " winners, "
                          << predictor.trainingExamples()
                          << " examples\n";
            } catch (const std::exception &e) {
                // A stale or corrupt model is not worth dying over --
                // the predictor just starts cold and retrains.
                std::cerr << "dyseld: ignoring saved predictor model: "
                          << e.what() << '\n';
            }
        } else {
            std::cout << "predictor cold start (threshold "
                      << opt.predictThreshold << ")\n";
        }
    }

    serve::ServiceConfig scfg;
    scfg.runtime.guard.enabled = opt.guard;
    scfg.batch.maxJobs = opt.maxBatch;
    scfg.batch.windowNs = opt.batchWindowNs;
    scfg.audit.sampleRate = opt.auditRate;
    serve::DispatchService svc(store, scfg);
    svc.addDevice(workloads::cpuFactory()());
    svc.addDevice(workloads::gpuFactory()());
    if (opt.faultRate > 0.0 || opt.variantFaultRate > 0.0) {
        svc.device(0).setFaultInjector(&cpuFaults);
        svc.device(1).setFaultInjector(&gpuFaults);
        std::cout << "fault injection on: rate " << opt.faultRate
                  << ", variant rate " << opt.variantFaultRate
                  << ", seed 0x" << std::hex << opt.faultSeed
                  << std::dec << '\n';
    }
    if (opt.guard)
        std::cout << "variant guard on\n";
    if (!opt.tracePath.empty()) {
        svc.tracer().setEnabled(true);
        std::cout << "tracing on -> " << opt.tracePath << '\n';
    }
    if (opt.predict)
        svc.setPredictor(&predictor);
    if (opt.auditRate > 0.0)
        std::cout << "selection audit on: rate " << opt.auditRate
                  << '\n';
    svc.start();

    AdminRunner admin;
    if (opt.adminPort >= 0) {
        const support::Status st =
            admin.attach(static_cast<std::uint16_t>(opt.adminPort),
                         svc, opt.predict ? &predictor : nullptr);
        if (!st.ok()) {
            std::cerr << "dyseld: admin plane failed: " << st.toString()
                      << '\n';
            svc.stop();
            return 1;
        }
        std::cout << "admin plane on http://127.0.0.1:" << admin.port()
                  << "/\n"
                  << std::flush;
    }

    auto pass1 = makeMix(false);
    runPass(svc, pass1);
    printPass("pass 1 (base mix)", pass1);

    auto pass2 = makeMix(true);
    runPass(svc, pass2);
    printPass("pass 2 (same mix + changed sgemm size bucket)", pass2);

    if (opt.adminPort >= 0 && opt.adminHoldSec > 0) {
        std::cout << "admin hold: up to " << opt.adminHoldSec
                  << "s (GET /quitquitquit to release)\n"
                  << std::flush;
        admin.hold(opt.adminHoldSec);
    }
    admin.detach();
    svc.stop();

    std::cout << "\n--- selection store ---\n";
    support::Table srec({"signature", "device", "bucket", "selected",
                         "launches", "profiled", "confidence",
                         "unit ns", "valid", "quarantined"});
    for (const auto &r : store.records()) {
        srec.row()
            .cell(r.signature)
            .cell(r.device.substr(0, r.device.find('/', 4)))
            .cell(std::uint64_t{r.bucket})
            .cell(r.selectedName)
            .cell(r.launches)
            .cell(r.profiledLaunches)
            .cell(r.confidence)
            .cell(r.unitTimeNs, 1)
            .cell(r.valid ? "yes" : "no")
            .cell(r.quarantinedVariant >= 0 ? "yes" : "no");
    }
    srec.print(std::cout);
    std::cout << "store: " << store.hits() << " hits, " << store.misses()
              << " misses, " << store.driftInvalidations()
              << " drift invalidations, " << store.quarantineCount()
              << " quarantines\n";

    if (opt.faultRate > 0.0 || opt.variantFaultRate > 0.0) {
        std::cout << "\n--- fault injection ---\n";
        printInjector("cpu", cpuFaults);
        printInjector("gpu", gpuFaults);
        auto counter = [&](const char *name) {
            return svc.metrics().counter(name).value();
        };
        std::cout << "recovery: " << counter("recover.retries")
                  << " retries, " << counter("recover.timeouts")
                  << " timeouts, " << counter("breaker.trips")
                  << " breaker trips, " << counter("store.quarantine")
                  << " quarantines, " << counter("jobs.failed")
                  << " jobs failed\n";
    }

    if (opt.predict) {
        auto counter = [&](const char *name) {
            return svc.metrics().counter(name).value();
        };
        std::cout << "\n--- learned selection ---\n"
                  << "predict: " << counter("predict.hit") << " hits, "
                  << counter("predict.miss") << " misses, "
                  << counter("predict.demoted") << " demotions, "
                  << counter("predict.train") << " trained; model "
                  << predictor.winnerCount() << " winners, calibration "
                  << predictor.calibration() << '\n';
    }

    if (opt.guard) {
        auto counter = [&](const char *name) {
            return svc.metrics().counter(name).value();
        };
        std::cout << "\n--- variant guard ---\n"
                  << "detections: " << counter("guard.mismatch")
                  << " mismatch, " << counter("guard.redzone")
                  << " redzone, " << counter("guard.nan") << " nan, "
                  << counter("guard.watchdog") << " watchdog; "
                  << counter("guard.excluded") << " exclusions, "
                  << counter("guard.repair") << " repairs\n";
        if (store.blacklistSize() > 0) {
            support::Table bl({"signature", "variant", "device",
                               "reason", "strikes"});
            for (const auto &e : store.blacklistEntries()) {
                bl.row()
                    .cell(e.signature)
                    .cell(e.variant)
                    .cell(e.device.substr(0, e.device.find('/', 4)))
                    .cell(e.reason)
                    .cell(e.strikes);
            }
            bl.print(std::cout);
        }
        std::cout << "blacklist: " << store.blacklistSize()
                  << " entries\n";
    }

    std::cout << "\n--- metrics ---\n";
    if (opt.metricsFormat == "json")
        std::cout << svc.metrics().renderJson().dump(2) << '\n';
    else if (opt.metricsFormat == "prom")
        std::cout << svc.metrics().renderPrometheus();
    else
        std::cout << svc.metrics().renderText();

    if (!opt.tracePath.empty()) {
        std::ofstream out(opt.tracePath);
        if (!out) {
            std::cerr << "dyseld: cannot write trace to "
                      << opt.tracePath << '\n';
            return 1;
        }
        out << svc.tracer().exportChromeTrace().dump(1) << '\n';
        if (!out.flush()) {
            std::cerr << "dyseld: trace write to " << opt.tracePath
                      << " failed\n";
            return 1;
        }
        std::cout << "wrote " << svc.tracer().eventCount()
                  << " trace events to " << opt.tracePath
                  << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }

    if (opt.save) {
        // The learned model rides the store file (a v4 extension), so
        // the next --predict run warm-starts both together.
        if (opt.predict)
            store.setExtension("predictor", predictor.toJson());
        const support::Status saved = store.saveFile(opt.storePath);
        if (!saved.ok()) {
            // A silent save failure would cost every selection (and
            // blacklist entry) earned this run.
            std::cerr << "dyseld: " << saved.toString() << '\n';
            return 1;
        }
        std::cout << "\nsaved " << store.size() << " records ("
                  << store.blacklistSize() << " blacklisted) to "
                  << opt.storePath << '\n';
    }
    return 0;
}
