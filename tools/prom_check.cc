/**
 * @file
 * prom_check: structural validator for the Prometheus text
 * exposition (/metrics or `dyseld --metrics prom` output).
 *
 * The renderer's unit tests check single families in isolation; this
 * tool is the whole-document gate CI points at a live scrape:
 *
 *   - metric and label names match the exposition grammar;
 *   - label values are properly quoted, escapes limited to \\ \" \n;
 *   - every sample belongs to a family declared with both # HELP and
 *     # TYPE (before its first sample), each declared exactly once;
 *   - sample values parse as numbers;
 *   - histograms are well-formed per label set: le values strictly
 *     increase, bucket counts are non-decreasing (cumulative), the
 *     +Inf bucket exists and equals _count, and _sum is present.
 *
 * Reads a file (or stdin with "-"); exits nonzero listing every
 * violation.  --quiet prints errors only.
 */
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto ok1 = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
               || c == '_' || c == ':';
    };
    if (!ok1(name[0]))
        return false;
    for (char c : name)
        if (!ok1(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

bool
validLabelName(const std::string &name)
{
    if (name.empty())
        return false;
    auto ok1 = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
               || c == '_';
    };
    if (!ok1(name[0]))
        return false;
    for (char c : name)
        if (!ok1(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

struct Sample
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0.0;
    int line = 0;
};

struct Checker
{
    std::vector<std::string> errors;
    int line = 0;

    void fail(const std::string &msg)
    {
        errors.push_back("line " + std::to_string(line) + ": " + msg);
    }
};

/** Parse `{k="v",...}`; returns false (with an error) on bad syntax. */
bool
parseLabels(Checker &ck, const std::string &text, std::size_t &pos,
            std::vector<std::pair<std::string, std::string>> &out)
{
    ++pos; // consume '{'
    while (pos < text.size() && text[pos] != '}') {
        std::size_t eq = text.find('=', pos);
        if (eq == std::string::npos) {
            ck.fail("label without '='");
            return false;
        }
        const std::string key = text.substr(pos, eq - pos);
        if (!validLabelName(key)) {
            ck.fail("bad label name '" + key + "'");
            return false;
        }
        pos = eq + 1;
        if (pos >= text.size() || text[pos] != '"') {
            ck.fail("label value of '" + key + "' not quoted");
            return false;
        }
        ++pos;
        std::string value;
        bool closed = false;
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '\\') {
                if (pos + 1 >= text.size()) {
                    ck.fail("dangling escape in label value");
                    return false;
                }
                const char esc = text[pos + 1];
                if (esc != '\\' && esc != '"' && esc != 'n') {
                    ck.fail(std::string("bad escape '\\") + esc
                            + "' in label value");
                    return false;
                }
                value.push_back(esc);
                pos += 2;
            } else if (c == '"') {
                closed = true;
                ++pos;
                break;
            } else if (c == '\n') {
                ck.fail("raw newline in label value");
                return false;
            } else {
                value.push_back(c);
                ++pos;
            }
        }
        if (!closed) {
            ck.fail("unterminated label value of '" + key + "'");
            return false;
        }
        out.emplace_back(key, value);
        if (pos < text.size() && text[pos] == ',')
            ++pos;
    }
    if (pos >= text.size() || text[pos] != '}') {
        ck.fail("unterminated label set");
        return false;
    }
    ++pos;
    return true;
}

/** Non-le labels of a bucket sample, as a stable grouping key. */
std::string
groupKey(const Sample &s)
{
    std::string key;
    for (const auto &kv : s.labels) {
        if (kv.first == "le")
            continue;
        key += kv.first + "=" + kv.second + ";";
    }
    return key;
}

double
leOf(const Sample &s)
{
    for (const auto &kv : s.labels)
        if (kv.first == "le") {
            if (kv.second == "+Inf")
                return std::numeric_limits<double>::infinity();
            return std::atof(kv.second.c_str());
        }
    return std::nan("");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || (arg.size() > 1 && arg[0] == '-'
                                       && arg != "-")) {
            std::cerr << "usage: prom_check [--quiet] FILE|-\n";
            return arg == "--help" ? 0 : 1;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: prom_check [--quiet] FILE|-\n";
        return 1;
    }

    std::ifstream file;
    std::istream *in = &std::cin;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::cerr << "prom_check: cannot read " << path << '\n';
            return 1;
        }
        in = &file;
    }

    Checker ck;
    std::map<std::string, std::string> types; ///< family -> type
    std::map<std::string, bool> helps;        ///< family -> seen
    std::vector<Sample> samples;

    std::string lineText;
    while (std::getline(*in, lineText)) {
        ++ck.line;
        if (lineText.empty())
            continue;
        if (lineText[0] == '#') {
            std::istringstream is(lineText);
            std::string hash, kind, family;
            is >> hash >> kind >> family;
            if (kind == "HELP") {
                if (!validMetricName(family))
                    ck.fail("HELP for bad metric name '" + family
                            + "'");
                if (helps.count(family))
                    ck.fail("duplicate HELP for '" + family + "'");
                helps[family] = true;
            } else if (kind == "TYPE") {
                std::string type;
                is >> type;
                if (!validMetricName(family))
                    ck.fail("TYPE for bad metric name '" + family
                            + "'");
                if (types.count(family))
                    ck.fail("duplicate TYPE for '" + family + "'");
                if (type != "counter" && type != "gauge"
                    && type != "histogram" && type != "summary"
                    && type != "untyped")
                    ck.fail("unknown type '" + type + "' for '"
                            + family + "'");
                types[family] = type;
            }
            continue; // other comments are free-form
        }

        Sample s;
        s.line = ck.line;
        std::size_t pos = 0;
        while (pos < lineText.size() && lineText[pos] != '{'
               && lineText[pos] != ' ')
            ++pos;
        s.name = lineText.substr(0, pos);
        if (!validMetricName(s.name)) {
            ck.fail("bad metric name '" + s.name + "'");
            continue;
        }
        if (pos < lineText.size() && lineText[pos] == '{') {
            if (!parseLabels(ck, lineText, pos, s.labels))
                continue;
        }
        if (pos >= lineText.size() || lineText[pos] != ' ') {
            ck.fail("missing value after '" + s.name + "'");
            continue;
        }
        const std::string valueText = lineText.substr(pos + 1);
        char *end = nullptr;
        s.value = std::strtod(valueText.c_str(), &end);
        // Timestamps (a second number) are legal; we don't emit them,
        // so anything trailing is an error here.
        if (end == valueText.c_str() || (end && *end != '\0')) {
            ck.fail("bad sample value '" + valueText + "'");
            continue;
        }
        samples.push_back(std::move(s));
    }

    // Family resolution: histogram series get _bucket/_sum/_count
    // suffixes; everything else must match a declared family exactly.
    auto familyOf = [&](const std::string &name) -> std::string {
        if (types.count(name))
            return name;
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            const std::string sfx = suffix;
            if (name.size() > sfx.size()
                && name.compare(name.size() - sfx.size(), sfx.size(),
                                sfx)
                       == 0) {
                const std::string base =
                    name.substr(0, name.size() - sfx.size());
                const auto it = types.find(base);
                if (it != types.end() && it->second == "histogram")
                    return base;
            }
        }
        return std::string();
    };

    for (const auto &s : samples) {
        ck.line = s.line;
        const std::string family = familyOf(s.name);
        if (family.empty()) {
            ck.fail("sample '" + s.name
                    + "' has no # TYPE declaration");
            continue;
        }
        if (!helps.count(family))
            ck.fail("family '" + family + "' has no # HELP");
    }

    // Histogram structure, per (family, label set).
    struct HistogramSeries
    {
        std::vector<const Sample *> buckets; ///< exposition order
        const Sample *sum = nullptr;
        const Sample *count = nullptr;
    };
    std::map<std::string, HistogramSeries> hists;
    for (const auto &s : samples) {
        const std::string family = familyOf(s.name);
        if (family.empty() || types[family] != "histogram")
            continue;
        auto &h = hists[family + "|" + groupKey(s)];
        if (s.name == family + "_bucket")
            h.buckets.push_back(&s);
        else if (s.name == family + "_sum")
            h.sum = &s;
        else if (s.name == family + "_count")
            h.count = &s;
    }
    for (const auto &entry : hists) {
        const auto &h = entry.second;
        const std::string what =
            "histogram '" + entry.first.substr(0, entry.first.find('|'))
            + "'";
        ck.line = h.buckets.empty() ? 0 : h.buckets.front()->line;
        if (h.buckets.empty()) {
            ck.line = h.count ? h.count->line : (h.sum ? h.sum->line : 0);
            ck.fail(what + " has no _bucket series");
            continue;
        }
        double prevLe = -std::numeric_limits<double>::infinity();
        double prevCount = -1.0;
        bool sawInf = false;
        double infCount = 0.0;
        for (const Sample *b : h.buckets) {
            ck.line = b->line;
            const double le = leOf(*b);
            if (std::isnan(le)) {
                ck.fail(what + " bucket without an le label");
                continue;
            }
            if (le <= prevLe)
                ck.fail(what + " le values not increasing");
            prevLe = le;
            if (b->value < prevCount)
                ck.fail(what + " bucket counts not cumulative");
            prevCount = b->value;
            if (std::isinf(le)) {
                sawInf = true;
                infCount = b->value;
            }
        }
        ck.line = h.buckets.back()->line;
        if (!sawInf)
            ck.fail(what + " missing the +Inf bucket");
        if (!h.count)
            ck.fail(what + " missing _count");
        else if (sawInf && infCount != h.count->value)
            ck.fail(what + " +Inf bucket != _count");
        if (!h.sum)
            ck.fail(what + " missing _sum");
    }

    if (!ck.errors.empty()) {
        for (const auto &e : ck.errors)
            std::cerr << "prom_check: " << e << '\n';
        std::cerr << "prom_check: FAIL (" << ck.errors.size()
                  << " errors, " << samples.size() << " samples)\n";
        return 1;
    }
    if (!quiet)
        std::cout << "prom_check: OK (" << types.size()
                  << " families, " << samples.size() << " samples, "
                  << hists.size() << " histogram series)\n";
    return 0;
}
